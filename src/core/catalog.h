/// \file
/// \brief Name → object registry (documents, DTDs, views) behind the
/// Smoqe facade, including the upsert + plan-invalidation contract the
/// plan cache depends on (docs/DESIGN.md §5.1).

#ifndef SMOQE_CORE_CATALOG_H_
#define SMOQE_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/index/tax.h"
#include "src/view/annotation.h"
#include "src/view/view_def.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::core {

/// A loaded document: the raw text (for StAX mode), the DOM, and an
/// optional TAX index.
struct DocumentEntry {
  std::string text;
  xml::Document dom;
  std::optional<index::TaxIndex> tax;
};

/// A registered view: derived definition plus the policy it came from.
struct ViewEntry {
  std::string dtd_name;
  std::unique_ptr<view::Policy> policy;
  view::ViewDefinition definition;
  /// Stable hash of (definition, dtd_name); part of every plan-cache key
  /// minted for this view, so plans compiled against an older definition
  /// can never be served after a redefinition (DESIGN.md §5.1).
  uint64_t fingerprint = 0;
};

/// \brief Name → object registry backing the engine facade. Objects are
/// heap-allocated so references handed out stay stable across inserts.
///
/// `Add*` rejects duplicates; `Put*` upserts and reports whether an
/// existing entry was replaced — the facade uses the report to invalidate
/// cached query plans that depended on the replaced object.
class Catalog {
 public:
  Status AddDocument(const std::string& name,
                     std::unique_ptr<DocumentEntry> doc);
  Status AddDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  Status AddView(const std::string& name, std::unique_ptr<ViewEntry> view);

  /// Registers or replaces; returns true when an existing entry was
  /// replaced (callers must then invalidate dependent compiled plans).
  /// Replacement happens in place through the existing heap object, so
  /// previously handed-out pointers stay valid and see the new content.
  bool PutDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  bool PutView(const std::string& name, std::unique_ptr<ViewEntry> view);

  DocumentEntry* FindDocument(const std::string& name);
  const DocumentEntry* FindDocument(const std::string& name) const;
  const xml::Dtd* FindDtd(const std::string& name) const;
  const ViewEntry* FindView(const std::string& name) const;

  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

 private:
  std::map<std::string, std::unique_ptr<DocumentEntry>> documents_;
  std::map<std::string, std::unique_ptr<xml::Dtd>> dtds_;
  std::map<std::string, std::unique_ptr<ViewEntry>> views_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_CATALOG_H_
