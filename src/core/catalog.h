/// \file
/// \brief Name → object registry (documents, DTDs, views) behind the
/// Smoqe facade, including the upsert + plan-invalidation contract the
/// plan cache depends on (docs/DESIGN.md §5.1).

#ifndef SMOQE_CORE_CATALOG_H_
#define SMOQE_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/index/tax.h"
#include "src/view/access.h"
#include "src/view/annotation.h"
#include "src/view/materialize.h"
#include "src/view/view_def.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::core {

/// Per-(document, view) caches derived from one document epoch: the
/// materialized view with provenance, and the node-level access map. Both
/// are invalidated by comparing `*_epoch` against `dom.epoch()` — a
/// successful update bumps the epoch, and the facade either rebuilds
/// lazily on next use or *retains* the materialization when the edit
/// provably could not change it (DESIGN.md §6.5).
struct ViewCacheEntry {
  uint64_t fingerprint = 0;  ///< ViewEntry::fingerprint the caches match
  uint64_t mv_epoch = 0;     ///< document epoch `mv` is valid at
  std::optional<view::MaterializedView> mv;
  uint64_t access_epoch = 0;  ///< document epoch `access` is valid at
  std::unique_ptr<view::AccessMap> access;  ///< null until first needed
};

/// A loaded document: the raw text (for StAX mode), the DOM, an optional
/// TAX index, and the epoch-stamped caches derived from the tree.
struct DocumentEntry {
  DocumentEntry(std::string text_, xml::Document dom_)
      : text(std::move(text_)), dom(std::move(dom_)) {}

  std::string text;
  xml::Document dom;
  std::optional<index::TaxIndex> tax;
  /// Document epoch `text` reflects. Starts at the load epoch (the
  /// original input text); updates leave it stale and the facade
  /// re-serializes lazily before the next streaming scan.
  uint64_t text_epoch = 0;
  /// Per-view caches, keyed by view name.
  std::map<std::string, ViewCacheEntry> view_caches;
};

/// A registered view: derived definition plus the policy it came from.
struct ViewEntry {
  std::string dtd_name;
  std::unique_ptr<view::Policy> policy;
  view::ViewDefinition definition;
  /// Stable hash of (definition, dtd_name); part of every plan-cache key
  /// minted for this view, so plans compiled against an older definition
  /// can never be served after a redefinition (DESIGN.md §5.1).
  uint64_t fingerprint = 0;
};

/// \brief Name → object registry backing the engine facade. Objects are
/// heap-allocated so references handed out stay stable across inserts.
///
/// `Add*` rejects duplicates; `Put*` upserts and reports whether an
/// existing entry was replaced — the facade uses the report to invalidate
/// cached query plans that depended on the replaced object.
class Catalog {
 public:
  Status AddDocument(const std::string& name,
                     std::unique_ptr<DocumentEntry> doc);
  Status AddDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  Status AddView(const std::string& name, std::unique_ptr<ViewEntry> view);

  /// Registers or replaces; returns true when an existing entry was
  /// replaced (callers must then invalidate dependent compiled plans).
  /// Replacement happens in place through the existing heap object, so
  /// previously handed-out pointers stay valid and see the new content.
  bool PutDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  bool PutView(const std::string& name, std::unique_ptr<ViewEntry> view);

  DocumentEntry* FindDocument(const std::string& name);
  const DocumentEntry* FindDocument(const std::string& name) const;
  const xml::Dtd* FindDtd(const std::string& name) const;
  const ViewEntry* FindView(const std::string& name) const;

  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

 private:
  std::map<std::string, std::unique_ptr<DocumentEntry>> documents_;
  std::map<std::string, std::unique_ptr<xml::Dtd>> dtds_;
  std::map<std::string, std::unique_ptr<ViewEntry>> views_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_CATALOG_H_
