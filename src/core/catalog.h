#ifndef SMOQE_CORE_CATALOG_H_
#define SMOQE_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/index/tax.h"
#include "src/view/annotation.h"
#include "src/view/view_def.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::core {

/// A loaded document: the raw text (for StAX mode), the DOM, and an
/// optional TAX index.
struct DocumentEntry {
  std::string text;
  xml::Document dom;
  std::optional<index::TaxIndex> tax;
};

/// A registered view: derived definition plus the policy it came from.
struct ViewEntry {
  std::string dtd_name;
  std::unique_ptr<view::Policy> policy;
  view::ViewDefinition definition;
};

/// \brief Name → object registry backing the engine facade. Objects are
/// heap-allocated so references handed out stay stable across inserts.
class Catalog {
 public:
  Status AddDocument(const std::string& name,
                     std::unique_ptr<DocumentEntry> doc);
  Status AddDtd(const std::string& name, std::unique_ptr<xml::Dtd> dtd);
  Status AddView(const std::string& name, std::unique_ptr<ViewEntry> view);

  DocumentEntry* FindDocument(const std::string& name);
  const DocumentEntry* FindDocument(const std::string& name) const;
  const xml::Dtd* FindDtd(const std::string& name) const;
  const ViewEntry* FindView(const std::string& name) const;

  std::vector<std::string> DocumentNames() const;
  std::vector<std::string> ViewNames() const;

 private:
  std::map<std::string, std::unique_ptr<DocumentEntry>> documents_;
  std::map<std::string, std::unique_ptr<xml::Dtd>> dtds_;
  std::map<std::string, std::unique_ptr<ViewEntry>> views_;
};

}  // namespace smoqe::core

#endif  // SMOQE_CORE_CATALOG_H_
