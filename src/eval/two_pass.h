/// \file
/// \brief Multi-pass tree-automaton baseline evaluator (the paper's Arb
/// comparison) that experiment E3 measures HyPE's single pass against
/// (docs/DESIGN.md §4).

#ifndef SMOQE_EVAL_TWO_PASS_H_
#define SMOQE_EVAL_TWO_PASS_H_

#include <vector>

#include "src/automata/mfa.h"
#include "src/common/counters.h"
#include "src/common/status.h"
#include "src/xml/dom.h"

namespace smoqe::eval {

/// Result of a two-pass evaluation.
struct TwoPassResult {
  std::vector<const xml::Node*> answers;  ///< document order, unique
  EvalStats stats;  ///< tree_passes = 3 (format conversion, bottom-up,
                    ///< top-down), matching the paper's account of Arb
};

/// \brief Tree-automaton-style baseline evaluator (the paper's Arb
/// comparison, §3: "previous systems require at least two passes").
///
/// Pass 0 converts the document to a binary (first-child / next-sibling
/// array) format, as Arb's pre-processing does. Pass 1 walks the tree
/// bottom-up computing, for every node, the truth of every predicate and
/// the subtree-acceptance of every obligation automaton state. Pass 2
/// walks top-down running the selection NFA with all predicates already
/// decided. Answers are identical to HyPE's (differential-tested).
Result<TwoPassResult> EvalTwoPass(const automata::Mfa& mfa,
                                  const xml::Document& doc);

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_TWO_PASS_H_
