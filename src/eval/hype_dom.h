/// \file
/// \brief DOM-mode HyPE driver: one engine walk of an in-memory tree,
/// optionally pruned by the TAX type index (docs/DESIGN.md §3; E2/E6 in
/// §4).

#ifndef SMOQE_EVAL_HYPE_DOM_H_
#define SMOQE_EVAL_HYPE_DOM_H_

#include <memory>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/counters.h"
#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/eval/engine.h"
#include "src/index/tax.h"
#include "src/xml/dom.h"

namespace smoqe::eval {

/// Options for DOM-mode evaluation.
struct DomEvalOptions {
  /// TAX index of the document; enables type-aware subtree pruning.
  const index::TaxIndex* tax = nullptr;
  EngineOptions engine;
  /// Per-request guardrail (deadline/cancel/budget); nullptr = ungoverned.
  /// A tripped guard unwinds with its status — never a partial answer.
  const Guardrail* guard = nullptr;
};

/// Result of a DOM-mode evaluation.
struct DomEvalResult {
  std::vector<const xml::Node*> answers;  ///< document order, unique
  EvalStats stats;
  /// Engine-id → node mapping (pruned subtrees have no ids); needed to
  /// render traces.
  std::vector<const xml::Node*> nodes_by_engine_id;
  std::unique_ptr<TraceLog> trace;  ///< present iff options.engine.trace
};

/// \brief DOM-mode HyPE: drives the single-pass engine over an in-memory
/// document (paper §2, "DOM mode").
///
/// The MFA must have been compiled against `doc`'s name table.
Result<DomEvalResult> EvalHypeDom(const automata::Mfa& mfa,
                                  const xml::Document& doc,
                                  const DomEvalOptions& options = {});

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_HYPE_DOM_H_
