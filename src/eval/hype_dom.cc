#include "src/eval/hype_dom.h"

#include <algorithm>

namespace smoqe::eval {

namespace {

class DomAttrs : public AttrProvider {
 public:
  explicit DomAttrs(const xml::Node* node) : node_(node) {}
  const char* Find(xml::NameId name) const override {
    return node_->FindAttr(name);
  }

 private:
  const xml::Node* node_;
};

}  // namespace

Result<DomEvalResult> EvalHypeDom(const automata::Mfa& mfa,
                                  const xml::Document& doc,
                                  const DomEvalOptions& options) {
  if (mfa.names() != doc.names()) {
    return Status::InvalidArgument(
        "MFA and document must share one name table");
  }
  HypeEngine engine(mfa, options.engine);
  DomEvalResult result;

  // Iterative DFS. nullptr entries are Leave markers for the enclosing
  // element; text nodes become Text events.
  GuardTicker ticker(options.guard);
  std::vector<const xml::Node*> stack;
  stack.push_back(doc.root());
  while (!stack.empty()) {
    if (ticker.Due()) {
      options.guard->ChargeBytes(engine.TakeAllocBytes());
      Status guard_st = ticker.Now();
      if (!guard_st.ok()) return guard_st;
    }
    const xml::Node* node = stack.back();
    stack.pop_back();
    if (node == nullptr) {
      engine.Leave();
      continue;
    }
    if (node->is_text()) {
      engine.Text(node->text);
      continue;
    }
    DomAttrs attrs(node);
    const DynamicBitset* types =
        options.tax != nullptr ? options.tax->DescendantTypes(node->node_id)
                               : nullptr;
    HypeEngine::EnterResult r = engine.Enter(node->label, attrs, types);
    result.nodes_by_engine_id.push_back(node);
    if (r.can_skip_subtree) {
      if (r.needs_direct_text) {
        engine.Text(xml::Document::DirectText(node));
      }
      engine.Leave();
      engine.mutable_stats()->nodes_pruned += static_cast<uint64_t>(
          node->subtree_end - node->order - 1);
      continue;
    }
    stack.push_back(nullptr);
    // Children in reverse so the leftmost is processed first.
    size_t mark = stack.size();
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + static_cast<ptrdiff_t>(mark), stack.end());
  }

  const std::vector<int32_t>& ids = engine.FinishDocument();
  result.answers.reserve(ids.size());
  for (int32_t id : ids) {
    result.answers.push_back(result.nodes_by_engine_id[id]);
  }
  result.stats = engine.stats();
  if (engine.trace() != nullptr) {
    result.trace = std::make_unique<TraceLog>(*engine.trace());
  }
  return result;
}

}  // namespace smoqe::eval
