#include "src/eval/trace.h"

#include <map>

namespace smoqe::eval {

namespace {

const char* KindName(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kVisit:
      return "visit";
    case TraceEvent::Kind::kPruneSubtree:
      return "prune-subtree";
    case TraceEvent::Kind::kCandidate:
      return "candidate";
    case TraceEvent::Kind::kAnswer:
      return "answer";
    case TraceEvent::Kind::kInstanceCreate:
      return "pred-instantiate";
    case TraceEvent::Kind::kInstanceResolve:
      return "pred-resolve";
  }
  return "?";
}

}  // namespace

std::string TraceLog::RenderEvents() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += KindName(e.kind);
    out += " node=" + std::to_string(e.node);
    if (e.aux >= 0) out += " P" + std::to_string(e.aux);
    if (e.kind == TraceEvent::Kind::kInstanceResolve) {
      out += e.flag ? " -> true" : " -> false";
    }
    out += "\n";
  }
  return out;
}

std::string TraceLog::RenderTree(
    const xml::Document& doc,
    const std::vector<const xml::Node*>& nodes_by_engine_id) const {
  struct Flags {
    bool visited = false, pruned = false, candidate = false, answer = false;
    int32_t engine_id = -1;
  };
  std::map<const xml::Node*, Flags> flags;
  for (const TraceEvent& e : events_) {
    if (e.node < 0 ||
        e.node >= static_cast<int32_t>(nodes_by_engine_id.size())) {
      continue;
    }
    Flags& f = flags[nodes_by_engine_id[e.node]];
    f.engine_id = e.node;
    switch (e.kind) {
      case TraceEvent::Kind::kVisit:
        f.visited = true;
        break;
      case TraceEvent::Kind::kPruneSubtree:
        f.pruned = true;
        break;
      case TraceEvent::Kind::kCandidate:
        f.candidate = true;
        break;
      case TraceEvent::Kind::kAnswer:
        f.answer = true;
        break;
      default:
        break;
    }
  }

  std::string out;
  struct Item {
    const xml::Node* node;
    int depth;
  };
  std::vector<Item> stack = {{doc.root(), 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    auto it = flags.find(node);
    std::string mark = "....";
    if (it != flags.end()) {
      mark[0] = it->second.visited ? 'V' : '.';
      mark[1] = it->second.pruned ? 'P' : '.';
      mark[2] = it->second.candidate ? 'C' : '.';
      mark[3] = it->second.answer ? 'A' : '.';
    }
    out += mark + " " + std::string(static_cast<size_t>(depth) * 2, ' ') +
           doc.names()->NameOf(node->label) + "\n";
    // Push children in reverse so the leftmost is processed first.
    std::vector<const xml::Node*> kids;
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) kids.push_back(c);
    }
    for (auto rit = kids.rbegin(); rit != kids.rend(); ++rit) {
      stack.push_back({*rit, depth + 1});
    }
  }
  return out;
}

}  // namespace smoqe::eval
