/// \file
/// \brief StAX-mode HyPE driver: single-query streaming evaluation with
/// in-scan answer capture — implemented as the N = 1 case of the batch
/// evaluator in batch.h (docs/DESIGN.md §3, §5.2).

#ifndef SMOQE_EVAL_HYPE_STAX_H_
#define SMOQE_EVAL_HYPE_STAX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/counters.h"
#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/eval/engine.h"

namespace smoqe::eval {

/// Options for StAX-mode evaluation.
struct StaxEvalOptions {
  EngineOptions engine;
  /// Drop text events that are all whitespace (matches the DOM parser's
  /// default, so the two modes agree).
  bool skip_whitespace_text = true;
  /// Per-request guardrail; forwarded to the batch driver's scan loop.
  const Guardrail* guard = nullptr;
};

/// One answer from a streaming evaluation.
struct StaxAnswer {
  int32_t engine_id;  ///< element pre-order id in the stream
  std::string xml;    ///< serialized subtree, captured during the scan
};

/// Result of a StAX-mode evaluation.
struct StaxEvalResult {
  std::vector<StaxAnswer> answers;  ///< document order
  EvalStats stats;                  ///< buffered_bytes = peak capture bytes
};

/// \brief StAX-mode HyPE: evaluates the MFA in a single forward scan of
/// XML text, without building a document tree (paper §2, "StAX mode").
///
/// Candidate answers are detected at their start tags (Cans grows only at
/// element entry), so their subtrees are captured — serialized back out —
/// during the same scan; candidates whose guards fail are discarded by the
/// final Cans pass. Peak capture footprint is reported in
/// `stats.buffered_bytes` (the paper's claim that Cans is much smaller
/// than the document is experiment E4/E5).
Result<StaxEvalResult> EvalHypeStax(const automata::Mfa& mfa,
                                    std::string_view xml,
                                    const StaxEvalOptions& options = {});

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_HYPE_STAX_H_
