#include "src/eval/engine.h"

#include <algorithm>
#include <cassert>

namespace smoqe::eval {

using automata::AcceptTest;
using automata::FlatNfa;
using automata::Obligation;
using automata::Pred;
using automata::PredId;
using automata::PredSet;

namespace {

class NoAttrs : public AttrProvider {
 public:
  const char* Find(xml::NameId) const override { return nullptr; }
};

}  // namespace

const AttrProvider& AttrProvider::None() {
  static const NoAttrs none;
  return none;
}

HypeEngine::HypeEngine(const automata::Mfa& mfa, EngineOptions options)
    : mfa_(mfa), options_(options), pool_(options.guard_interning) {
  if (options_.trace) trace_ = std::make_unique<TraceLog>();
  // Virtual document node (the query context above the root). The
  // attribute provider is threaded through every call that can reach an
  // attribute accept test — never stashed in a global — so the engine is
  // fully confined to its owning thread (docs/DESIGN.md §7).
  PushFrame(-1);
  const AttrProvider& attrs = AttrProvider::None();
  for (const auto& [state, guard_preds] : mfa_.selection().initial) {
    Run r;
    r.is_selection = true;
    r.state = state;
    r.guard = InstantiateSet(guard_preds, attrs);
    AddRun(r);
  }
  Frame& base = CurFrame();
  for (size_t i = 0; i < base.runs.size(); ++i) {
    Run r = base.runs[i];  // copy: the vector may grow/reallocate
    EagerInstantiate(r, attrs);
    HandleAccepts(r, attrs);
  }
}

HypeEngine::~HypeEngine() = default;

HypeEngine::Frame& HypeEngine::PushFrame(int32_t id) {
  if (depth_ == stack_.size()) {
    stack_.emplace_back();
    alloc_bytes_ += sizeof(Frame);
  }
  Frame& f = stack_[depth_++];
  f.Reset(id);
  // New epoch: every dedup-table slot of previous frames is now stale.
  ++frame_epoch_;
  return f;
}

const FlatNfa& HypeEngine::NfaOf(const Run& r) const {
  return r.is_selection ? mfa_.selection() : mfa_.obligation(r.ob).nfa;
}

namespace {

/// Frames with fewer runs than this are deduplicated by linear scan even
/// when hashed_run_dedup is on: below it the scan is one cache line and
/// beats any table. The index kicks in — built once, lazily — when a frame
/// goes wide (recursion × predicates × unions), which is exactly where the
/// linear scan degrades quadratically. Sweeping 4…64 on the deep-genealogy
/// workload showed 4–16 equivalent and ≥32 measurably worse.
constexpr size_t kRunIndexThreshold = 16;

/// Hash of a run's dedup key (is_selection, ob, owner, leaf, state).
/// `owner` and `state` carry nearly all the entropy; one 64-bit multiply
/// spreads them.
inline uint32_t RunKeyHash(bool is_selection, automata::ObligationId ob,
                           InstId owner, int leaf, int state) {
  uint32_t lo = (static_cast<uint32_t>(state) << 12) ^
                (static_cast<uint32_t>(leaf) << 6) ^
                static_cast<uint32_t>(ob) ^ (is_selection ? 1u : 0u);
  uint64_t x =
      (static_cast<uint64_t>(static_cast<uint32_t>(owner)) << 32) | lo;
  x *= 0x9e3779b97f4a7c15ull;
  return static_cast<uint32_t>(x >> 32);
}

}  // namespace

bool HypeEngine::AddRun(Run run) {
  Frame& cur = CurFrame();
  if (options_.hashed_run_dedup && cur.runs.size() >= kRunIndexThreshold) {
    return AddRunHashed(cur, run);
  }
  for (const Run& e : cur.runs) {
    if (e.is_selection != run.is_selection || e.ob != run.ob ||
        e.owner != run.owner || e.leaf != run.leaf || e.state != run.state) {
      continue;
    }
    if (options_.guard_dominance ? pool_.IsSubset(e.guard, run.guard)
                                 : pool_.Equal(e.guard, run.guard)) {
      ++stats_.runs_deduped;
      return false;  // dominated (or duplicated) by an existing run
    }
  }
  cur.runs.push_back(run);
  alloc_bytes_ += sizeof(Run);
  return true;
}

void HypeEngine::SeedRunIndex(Frame& cur) {
  // Grow the table until the frame's runs load it at most half full, then
  // stamp the current frame's runs into it. Growth wipes epochs (cheap and
  // rare); entries of other frames were stale anyway.
  size_t want = dedup_epoch_.empty() ? 256 : dedup_epoch_.size();
  while (want < 2 * (cur.runs.size() + kRunIndexThreshold)) want *= 2;
  if (want != dedup_epoch_.size()) {
    dedup_epoch_.assign(want, 0);
    dedup_head_.resize(want);
  }
  size_t mask = want - 1;
  cur.run_next.assign(cur.runs.size(), -1);
  for (size_t i = 0; i < cur.runs.size(); ++i) {
    const Run& e = cur.runs[i];
    uint32_t h = RunKeyHash(e.is_selection, e.ob, e.owner, e.leaf, e.state);
    size_t slot = h & mask;
    while (dedup_epoch_[slot] == frame_epoch_) {
      const Run& head = cur.runs[static_cast<size_t>(dedup_head_[slot])];
      if (head.is_selection == e.is_selection && head.ob == e.ob &&
          head.owner == e.owner && head.leaf == e.leaf &&
          head.state == e.state) {
        cur.run_next[i] = dedup_head_[slot];
        break;
      }
      slot = (slot + 1) & mask;
    }
    dedup_epoch_[slot] = frame_epoch_;
    dedup_head_[slot] = static_cast<int32_t>(i);
  }
}

bool HypeEngine::AddRunHashed(Frame& cur, const Run& run) {
  // First insert past the linear threshold (run_next lagging runs) or a
  // table nearing half load reseeds; otherwise the table is current.
  if (cur.run_next.size() != cur.runs.size() ||
      dedup_epoch_.size() < 2 * (cur.runs.size() + 1)) {
    SeedRunIndex(cur);
  }
  size_t mask = dedup_epoch_.size() - 1;
  uint32_t h =
      RunKeyHash(run.is_selection, run.ob, run.owner, run.leaf, run.state);
  size_t slot = h & mask;
  ++stats_.run_dedup_probes;
  while (dedup_epoch_[slot] == frame_epoch_) {
    const Run& head = cur.runs[static_cast<size_t>(dedup_head_[slot])];
    if (head.is_selection == run.is_selection && head.ob == run.ob &&
        head.owner == run.owner && head.leaf == run.leaf &&
        head.state == run.state) {
      // Key chain found: only same-key runs are checked for dominance.
      for (int32_t i = dedup_head_[slot]; i >= 0; i = cur.run_next[i]) {
        const Run& e = cur.runs[static_cast<size_t>(i)];
        if (options_.guard_dominance ? pool_.IsSubset(e.guard, run.guard)
                                     : pool_.Equal(e.guard, run.guard)) {
          ++stats_.runs_deduped;
          return false;
        }
      }
      cur.run_next.push_back(dedup_head_[slot]);
      dedup_head_[slot] = static_cast<int32_t>(cur.runs.size());
      cur.runs.push_back(run);
      alloc_bytes_ += sizeof(Run);
      return true;
    }
    slot = (slot + 1) & mask;
    ++stats_.run_dedup_probes;
  }
  dedup_epoch_[slot] = frame_epoch_;
  dedup_head_[slot] = static_cast<int32_t>(cur.runs.size());
  cur.run_next.push_back(-1);
  cur.runs.push_back(run);
  alloc_bytes_ += sizeof(Run);
  return true;
}

GuardRef HypeEngine::InstantiateSet(const PredSet& preds,
                                    const AttrProvider& attrs) {
  GuardRef g = GuardPool::kEmpty;
  for (PredId p : preds) g = pool_.Merge(g, Instantiate(p, attrs));
  return g;
}

InstId HypeEngine::Instantiate(PredId pred, const AttrProvider& attrs) {
  Frame& cur = CurFrame();
  InstId existing = cur.FindInst(pred);
  if (existing >= 0) return existing;

  InstId id = static_cast<InstId>(instances_.size());
  const Pred& p = mfa_.pred(pred);
  PredInstance inst;
  inst.pred = pred;
  inst.anchor = cur.id;
  inst.leaf_witnesses.resize(p.leaf_obligations.size());
  instances_.push_back(std::move(inst));
  alloc_bytes_ += sizeof(PredInstance);
  cur.inst_map.emplace_back(pred, id);
  cur.anchored.push_back(id);
  ++stats_.pred_instances;
  if (trace_) {
    trace_->Add({TraceEvent::Kind::kInstanceCreate, cur.id, pred, false});
  }

  // Launch the predicate's obligation runs, anchored here.
  for (size_t leaf = 0; leaf < p.leaf_obligations.size(); ++leaf) {
    automata::ObligationId ob_id = p.leaf_obligations[leaf];
    const Obligation& ob = mfa_.obligation(ob_id);
    for (const auto& [state, guard_preds] : ob.nfa.initial) {
      if (!ob.nfa.states[state].live) continue;
      Run r;
      r.is_selection = false;
      r.ob = ob_id;
      r.owner = id;
      r.leaf = static_cast<int>(leaf);
      r.state = state;
      r.guard = InstantiateSet(guard_preds, attrs);
      ++stats_.obligations;
      AddRun(r);
    }
    // ε acceptance: the path can match the anchor itself.
    for (const PredSet& accept : ob.nfa.initial_accept_guards) {
      GuardRef g = InstantiateSet(accept, attrs);
      switch (ob.test.kind) {
        case AcceptTest::Kind::kExists:
          Witness(id, static_cast<int>(leaf), g);
          break;
        case AcceptTest::Kind::kAttrExists:
        case AcceptTest::Kind::kAttrEq: {
          const char* v = attrs.Find(ob.test.attr);
          if (v != nullptr && (ob.test.kind == AcceptTest::Kind::kAttrExists ||
                               ob.test.value == v)) {
            Witness(id, static_cast<int>(leaf), g);
          }
          break;
        }
        case AcceptTest::Kind::kTextEq: {
          Frame& frame = CurFrame();
          frame.pending_text.push_back(
              PendingText{id, static_cast<int>(leaf), g, &ob.test.value});
          frame.needs_text = true;
          break;
        }
      }
    }
  }
  return id;
}

void HypeEngine::EagerInstantiate(const Run& run, const AttrProvider& attrs) {
  const FlatNfa::State& st = NfaOf(run).states[run.state];
  if (options_.label_dispatch) {
    // Sealed union of the per-transition / per-accept pred sets; same
    // instances created (Instantiate dedups), one short list to walk.
    for (PredId p : st.eager_preds) Instantiate(p, attrs);
    return;
  }
  for (const FlatNfa::Transition& t : st.trans) {
    for (PredId p : t.src_preds) Instantiate(p, attrs);
  }
  for (const PredSet& accept : st.accept_guards) {
    for (PredId p : accept) Instantiate(p, attrs);
  }
}

void HypeEngine::HandleAccepts(const Run& run, const AttrProvider& attrs) {
  Frame& cur = CurFrame();
  const FlatNfa::State& st = NfaOf(run).states[run.state];
  for (const PredSet& accept : st.accept_guards) {
    GuardRef g =
        options_.guard_interning ? run.guard : pool_.CopyFresh(run.guard);
    for (PredId p : accept) {
      InstId inst = cur.FindInst(p);
      assert(inst >= 0);  // EagerInstantiate created it
      g = pool_.Merge(g, inst);
    }
    if (run.is_selection) {
      if (cur.id >= 0) {
        cans_.Add(cur.id, pool_.Materialize(g));
        ++stats_.cans_entries;
        if (trace_) {
          trace_->Add({TraceEvent::Kind::kCandidate, cur.id, -1, false});
        }
      }
    } else {
      const Obligation& ob = mfa_.obligation(run.ob);
      switch (ob.test.kind) {
        case AcceptTest::Kind::kExists:
          Witness(run.owner, run.leaf, g);
          break;
        case AcceptTest::Kind::kAttrExists:
        case AcceptTest::Kind::kAttrEq: {
          const char* v = attrs.Find(ob.test.attr);
          if (v != nullptr && (ob.test.kind == AcceptTest::Kind::kAttrExists ||
                               ob.test.value == v)) {
            Witness(run.owner, run.leaf, g);
          }
          break;
        }
        case AcceptTest::Kind::kTextEq:
          cur.pending_text.push_back(
              PendingText{run.owner, run.leaf, g, &ob.test.value});
          cur.needs_text = true;
          break;
      }
    }
  }
}

void HypeEngine::Witness(InstId owner, int leaf, GuardRef guard) {
  std::vector<GuardRef>& alts = instances_[owner].leaf_witnesses[leaf];
  for (GuardRef g : alts) {
    if (pool_.IsSubset(g, guard)) return;
  }
  alts.erase(std::remove_if(
                 alts.begin(), alts.end(),
                 [&](GuardRef g) { return pool_.IsSubset(guard, g); }),
             alts.end());
  alts.push_back(guard);
}

void HypeEngine::AdvanceRun(const Frame& parent, const Run& r,
                            const FlatNfa::Transition& t,
                            const AttrProvider& attrs) {
  // With interning the advanced run shares the parent's guard handle; the
  // un-interned engine copied the guard vector here on every transition, so
  // the ablation baseline reproduces that allocate-and-copy.
  GuardRef g =
      options_.guard_interning ? r.guard : pool_.CopyFresh(r.guard);
  for (PredId p : t.src_preds) {
    InstId inst = parent.FindInst(p);
    assert(inst >= 0);
    g = pool_.Merge(g, inst);
  }
  // dst predicates anchor at this node.
  for (PredId p : t.dst_preds) g = pool_.Merge(g, Instantiate(p, attrs));
  Run nr;
  nr.is_selection = r.is_selection;
  nr.ob = r.ob;
  nr.owner = r.owner;
  nr.leaf = r.leaf;
  nr.state = t.target;
  nr.guard = g;
  AddRun(nr);
}

HypeEngine::EnterResult HypeEngine::Enter(xml::NameId label,
                                          const AttrProvider& attrs,
                                          const DynamicBitset* subtree_types) {
  assert(!finished_ && depth_ > 0);
  ++stats_.nodes_visited;
  int32_t id = next_id_++;
  if (trace_) trace_->Add({TraceEvent::Kind::kVisit, id, -1, false});

  Frame& cur = PushFrame(id);
  Frame& parent = stack_[depth_ - 2];

  // Phase 1: advance runs from the parent frame across this label. With
  // label dispatch, the transitions that can match are read off the
  // state's sealed span for `label` plus its wildcard list — no per-
  // transition LabelTest. The fallback scans st.trans like the seed did.
  if (options_.label_dispatch) {
    for (const Run& r : parent.runs) {
      const FlatNfa::State& st = NfaOf(r).states[r.state];
      auto [b, e] = st.LabelSpan(label);
      stats_.dispatch_label_hits += static_cast<uint64_t>(e - b);
      stats_.dispatch_wildcard_hits +=
          static_cast<uint64_t>(st.wildcard_trans.size());
      for (const int32_t* p = b; p != e; ++p) {
        AdvanceRun(parent, r, st.trans[static_cast<size_t>(*p)], attrs);
      }
      for (int32_t ti : st.wildcard_trans) {
        AdvanceRun(parent, r, st.trans[static_cast<size_t>(ti)], attrs);
      }
    }
  } else {
    for (const Run& r : parent.runs) {
      const FlatNfa::State& st = NfaOf(r).states[r.state];
      stats_.dispatch_scan_steps += static_cast<uint64_t>(st.trans.size());
      for (const FlatNfa::Transition& t : st.trans) {
        if (!t.test.Matches(label)) continue;
        AdvanceRun(parent, r, t, attrs);
      }
    }
  }

  // Phase 2: worklist — eager instantiation + acceptance; instantiation
  // may append further obligation runs, which are processed in turn.
  for (size_t i = 0; i < cur.runs.size(); ++i) {
    Run r = cur.runs[i];  // copy: vector may reallocate
    EagerInstantiate(r, attrs);
    HandleAccepts(r, attrs);
  }

  stats_.max_active_pairs =
      std::max<uint64_t>(stats_.max_active_pairs, cur.runs.size());

  EnterResult res;
  res.needs_direct_text = cur.needs_text;
  if (cur.runs.empty()) {
    res.can_skip_subtree = options_.dead_run_pruning;
  } else if (subtree_types != nullptr) {
    // TAX prune test: a run can still accept inside this subtree only if
    // every label its accepting continuations must consume occurs below.
    bool alive = false;
    for (const Run& r : cur.runs) {
      const FlatNfa::State& st = NfaOf(r).states[r.state];
      if (!st.live) continue;
      bool all_present = true;
      for (xml::NameId l : st.necessary_labels) {
        if (static_cast<size_t>(l) >= subtree_types->size() ||
            !subtree_types->Test(static_cast<size_t>(l))) {
          all_present = false;
          break;
        }
      }
      if (all_present) {
        alive = true;
        break;
      }
    }
    if (!alive) res.can_skip_subtree = true;
  }
  if (res.can_skip_subtree) {
    ++stats_.subtrees_pruned;
    if (trace_) trace_->Add({TraceEvent::Kind::kPruneSubtree, id, -1, false});
  }
  return res;
}

void HypeEngine::ResolveFrame(Frame* frame) {
  // Reverse creation order: nested instances (created later, same anchor)
  // resolve before the instances that reference them.
  for (auto it = frame->anchored.rbegin(); it != frame->anchored.rend();
       ++it) {
    PredInstance& inst = instances_[*it];
    const Pred& p = mfa_.pred(inst.pred);
    std::vector<bool> leaf_values(p.leaf_obligations.size(), false);
    for (size_t leaf = 0; leaf < leaf_values.size(); ++leaf) {
      for (GuardRef g : inst.leaf_witnesses[leaf]) {
        const InstId* deps = pool_.data(g);
        const size_t n = pool_.size(g);
        bool all = true;
        for (size_t i = 0; i < n; ++i) {
          assert(instances_[deps[i]].resolved);
          if (!instances_[deps[i]].value) {
            all = false;
            break;
          }
        }
        if (all) {
          leaf_values[leaf] = true;
          break;
        }
      }
      inst.leaf_witnesses[leaf].clear();  // release memory early
    }
    inst.value = p.Evaluate(leaf_values);
    inst.resolved = true;
    if (trace_) {
      trace_->Add({TraceEvent::Kind::kInstanceResolve, inst.anchor, inst.pred,
                   inst.value});
    }
  }
}

void HypeEngine::Leave() {
  assert(depth_ > 1);
  Frame& cur = CurFrame();
  // Text checks resolve now that the element's direct text is complete.
  for (PendingText& pt : cur.pending_text) {
    if (cur.direct_text == *pt.value) {
      Witness(pt.owner, pt.leaf, pt.guard);
    }
  }
  cur.pending_text.clear();
  ResolveFrame(&cur);
  PopFrame();
}

const std::vector<int32_t>& HypeEngine::FinishDocument() {
  if (finished_) return answers_;
  assert(depth_ == 1);  // only the virtual document frame remains
  // The virtual document node has no text; pending checks fail naturally.
  ResolveFrame(&CurFrame());
  PopFrame();
  answers_ = cans_.Select(instances_);
  stats_.answers = answers_.size();
  stats_.tree_passes = 1;
  stats_.aux_passes = 1;
  stats_.guard_pool_entries = pool_.entry_count();
  stats_.guard_pool_hits = pool_.hits();
  stats_.guard_pool_misses = pool_.misses();
  if (trace_) {
    for (int32_t id : answers_) {
      trace_->Add({TraceEvent::Kind::kAnswer, id, -1, false});
    }
  }
  finished_ = true;
  return answers_;
}

}  // namespace smoqe::eval
