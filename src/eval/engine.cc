#include "src/eval/engine.h"

#include <algorithm>
#include <cassert>

namespace smoqe::eval {

using automata::AcceptTest;
using automata::FlatNfa;
using automata::Obligation;
using automata::Pred;
using automata::PredId;
using automata::PredSet;

namespace {

class NoAttrs : public AttrProvider {
 public:
  const char* Find(xml::NameId) const override { return nullptr; }
};

bool IsSubset(const GuardSet& a, const GuardSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

GuardSet MergeGuard(const GuardSet& a, InstId extra) {
  GuardSet out;
  out.reserve(a.size() + 1);
  auto it = std::lower_bound(a.begin(), a.end(), extra);
  out.insert(out.end(), a.begin(), it);
  if (it == a.end() || *it != extra) out.push_back(extra);
  out.insert(out.end(), it, a.end());
  return out;
}

}  // namespace

const AttrProvider& AttrProvider::None() {
  static const NoAttrs none;
  return none;
}

// The attribute provider of the node currently being entered. Only valid
// during Enter (and the constructor's virtual-document setup); accept tests
// are the only consumers.
static thread_local const AttrProvider* g_cur_attrs = nullptr;

HypeEngine::HypeEngine(const automata::Mfa& mfa, EngineOptions options)
    : mfa_(mfa), options_(options) {
  if (options_.trace) trace_ = std::make_unique<TraceLog>();
  // Virtual document node (the query context above the root).
  PushFrame(-1);
  g_cur_attrs = &AttrProvider::None();
  for (const auto& [state, guard_preds] : mfa_.selection().initial) {
    Run r;
    r.is_selection = true;
    r.state = state;
    r.guard = InstantiateSet(guard_preds);
    AddRun(std::move(r));
  }
  Frame& base = CurFrame();
  for (size_t i = 0; i < base.runs.size(); ++i) {
    Run r = base.runs[i];  // copy: the vector may grow/reallocate
    EagerInstantiate(r);
    HandleAccepts(r);
  }
  g_cur_attrs = nullptr;
}

HypeEngine::~HypeEngine() = default;

HypeEngine::Frame& HypeEngine::PushFrame(int32_t id) {
  if (depth_ == stack_.size()) stack_.emplace_back();
  Frame& f = stack_[depth_++];
  f.Reset(id);
  return f;
}

const FlatNfa& HypeEngine::NfaOf(const Run& r) const {
  return r.is_selection ? mfa_.selection() : mfa_.obligation(r.ob).nfa;
}

bool HypeEngine::AddRun(Run run) {
  Frame& cur = CurFrame();
  for (const Run& e : cur.runs) {
    if (e.is_selection != run.is_selection || e.ob != run.ob ||
        e.owner != run.owner || e.leaf != run.leaf || e.state != run.state) {
      continue;
    }
    if (options_.guard_dominance ? IsSubset(e.guard, run.guard)
                                 : e.guard == run.guard) {
      return false;  // dominated (or duplicated) by an existing run
    }
  }
  cur.runs.push_back(std::move(run));
  return true;
}

GuardSet HypeEngine::InstantiateSet(const PredSet& preds) {
  GuardSet g;
  for (PredId p : preds) g = MergeGuard(g, Instantiate(p));
  return g;
}

InstId HypeEngine::Instantiate(PredId pred) {
  Frame& cur = CurFrame();
  InstId existing = cur.FindInst(pred);
  if (existing >= 0) return existing;

  InstId id = static_cast<InstId>(instances_.size());
  const Pred& p = mfa_.pred(pred);
  PredInstance inst;
  inst.pred = pred;
  inst.anchor = cur.id;
  inst.leaf_witnesses.resize(p.leaf_obligations.size());
  instances_.push_back(std::move(inst));
  cur.inst_map.emplace_back(pred, id);
  cur.anchored.push_back(id);
  ++stats_.pred_instances;
  if (trace_) {
    trace_->Add({TraceEvent::Kind::kInstanceCreate, cur.id, pred, false});
  }

  // Launch the predicate's obligation runs, anchored here.
  for (size_t leaf = 0; leaf < p.leaf_obligations.size(); ++leaf) {
    automata::ObligationId ob_id = p.leaf_obligations[leaf];
    const Obligation& ob = mfa_.obligation(ob_id);
    for (const auto& [state, guard_preds] : ob.nfa.initial) {
      if (!ob.nfa.states[state].live) continue;
      Run r;
      r.is_selection = false;
      r.ob = ob_id;
      r.owner = id;
      r.leaf = static_cast<int>(leaf);
      r.state = state;
      r.guard = InstantiateSet(guard_preds);
      ++stats_.obligations;
      AddRun(std::move(r));
    }
    // ε acceptance: the path can match the anchor itself.
    for (const PredSet& accept : ob.nfa.initial_accept_guards) {
      // Re-fetch cur: instances_/stack_ unchanged but keep it tidy.
      GuardSet g = InstantiateSet(accept);
      switch (ob.test.kind) {
        case AcceptTest::Kind::kExists:
          Witness(id, static_cast<int>(leaf), std::move(g));
          break;
        case AcceptTest::Kind::kAttrExists:
        case AcceptTest::Kind::kAttrEq: {
          const char* v = g_cur_attrs->Find(ob.test.attr);
          if (v != nullptr && (ob.test.kind == AcceptTest::Kind::kAttrExists ||
                               ob.test.value == v)) {
            Witness(id, static_cast<int>(leaf), std::move(g));
          }
          break;
        }
        case AcceptTest::Kind::kTextEq: {
          Frame& frame = CurFrame();
          frame.pending_text.push_back(PendingText{
              id, static_cast<int>(leaf), std::move(g), &ob.test.value});
          frame.needs_text = true;
          break;
        }
      }
    }
  }
  return id;
}

void HypeEngine::EagerInstantiate(const Run& run) {
  const FlatNfa::State& st = NfaOf(run).states[run.state];
  for (const FlatNfa::Transition& t : st.trans) {
    for (PredId p : t.src_preds) Instantiate(p);
  }
  for (const PredSet& accept : st.accept_guards) {
    for (PredId p : accept) Instantiate(p);
  }
}

void HypeEngine::HandleAccepts(const Run& run) {
  Frame& cur = CurFrame();
  const FlatNfa::State& st = NfaOf(run).states[run.state];
  for (const PredSet& accept : st.accept_guards) {
    GuardSet g = run.guard;
    for (PredId p : accept) {
      InstId inst = cur.FindInst(p);
      assert(inst >= 0);  // EagerInstantiate created it
      g = MergeGuard(g, inst);
    }
    if (run.is_selection) {
      if (cur.id >= 0) {
        cans_.Add(cur.id, std::move(g));
        ++stats_.cans_entries;
        if (trace_) {
          trace_->Add({TraceEvent::Kind::kCandidate, cur.id, -1, false});
        }
      }
    } else {
      const Obligation& ob = mfa_.obligation(run.ob);
      switch (ob.test.kind) {
        case AcceptTest::Kind::kExists:
          Witness(run.owner, run.leaf, std::move(g));
          break;
        case AcceptTest::Kind::kAttrExists:
        case AcceptTest::Kind::kAttrEq: {
          const char* v = g_cur_attrs->Find(ob.test.attr);
          if (v != nullptr && (ob.test.kind == AcceptTest::Kind::kAttrExists ||
                               ob.test.value == v)) {
            Witness(run.owner, run.leaf, std::move(g));
          }
          break;
        }
        case AcceptTest::Kind::kTextEq:
          cur.pending_text.push_back(
              PendingText{run.owner, run.leaf, std::move(g), &ob.test.value});
          cur.needs_text = true;
          break;
      }
    }
  }
}

void HypeEngine::Witness(InstId owner, int leaf, GuardSet guard) {
  std::vector<GuardSet>& alts = instances_[owner].leaf_witnesses[leaf];
  for (const GuardSet& g : alts) {
    if (IsSubset(g, guard)) return;
  }
  alts.erase(std::remove_if(
                 alts.begin(), alts.end(),
                 [&](const GuardSet& g) { return IsSubset(guard, g); }),
             alts.end());
  alts.push_back(std::move(guard));
}

HypeEngine::EnterResult HypeEngine::Enter(xml::NameId label,
                                          const AttrProvider& attrs,
                                          const DynamicBitset* subtree_types) {
  assert(!finished_ && depth_ > 0);
  ++stats_.nodes_visited;
  int32_t id = next_id_++;
  if (trace_) trace_->Add({TraceEvent::Kind::kVisit, id, -1, false});

  Frame& cur = PushFrame(id);
  Frame& parent = stack_[depth_ - 2];
  g_cur_attrs = &attrs;

  // Phase 1: advance runs from the parent frame across this label.
  for (const Run& r : parent.runs) {
    const FlatNfa::State& st = NfaOf(r).states[r.state];
    for (const FlatNfa::Transition& t : st.trans) {
      if (!t.test.Matches(label)) continue;
      GuardSet g = r.guard;
      for (PredId p : t.src_preds) {
        InstId inst = parent.FindInst(p);
        assert(inst >= 0);
        g = MergeGuard(g, inst);
      }
      // dst predicates anchor at this node.
      for (PredId p : t.dst_preds) g = MergeGuard(g, Instantiate(p));
      Run nr;
      nr.is_selection = r.is_selection;
      nr.ob = r.ob;
      nr.owner = r.owner;
      nr.leaf = r.leaf;
      nr.state = t.target;
      nr.guard = std::move(g);
      AddRun(std::move(nr));
    }
  }

  // Phase 2: worklist — eager instantiation + acceptance; instantiation
  // may append further obligation runs, which are processed in turn.
  for (size_t i = 0; i < cur.runs.size(); ++i) {
    Run r = cur.runs[i];  // copy: vector may reallocate
    EagerInstantiate(r);
    HandleAccepts(r);
  }
  g_cur_attrs = nullptr;

  stats_.max_active_pairs =
      std::max<uint64_t>(stats_.max_active_pairs, cur.runs.size());

  EnterResult res;
  res.needs_direct_text = cur.needs_text;
  if (cur.runs.empty()) {
    res.can_skip_subtree = options_.dead_run_pruning;
  } else if (subtree_types != nullptr) {
    // TAX prune test: a run can still accept inside this subtree only if
    // every label its accepting continuations must consume occurs below.
    bool alive = false;
    for (const Run& r : cur.runs) {
      const FlatNfa::State& st = NfaOf(r).states[r.state];
      if (!st.live) continue;
      bool all_present = true;
      for (xml::NameId l : st.necessary_labels) {
        if (static_cast<size_t>(l) >= subtree_types->size() ||
            !subtree_types->Test(static_cast<size_t>(l))) {
          all_present = false;
          break;
        }
      }
      if (all_present) {
        alive = true;
        break;
      }
    }
    if (!alive) res.can_skip_subtree = true;
  }
  if (res.can_skip_subtree) {
    ++stats_.subtrees_pruned;
    if (trace_) trace_->Add({TraceEvent::Kind::kPruneSubtree, id, -1, false});
  }
  return res;
}

void HypeEngine::Text(std::string_view text) {
  Frame& cur = CurFrame();
  if (cur.needs_text) cur.direct_text.append(text);
}

void HypeEngine::ResolveFrame(Frame* frame) {
  // Reverse creation order: nested instances (created later, same anchor)
  // resolve before the instances that reference them.
  for (auto it = frame->anchored.rbegin(); it != frame->anchored.rend();
       ++it) {
    PredInstance& inst = instances_[*it];
    const Pred& p = mfa_.pred(inst.pred);
    std::vector<bool> leaf_values(p.leaf_obligations.size(), false);
    for (size_t leaf = 0; leaf < leaf_values.size(); ++leaf) {
      for (const GuardSet& g : inst.leaf_witnesses[leaf]) {
        bool all = true;
        for (InstId dep : g) {
          assert(instances_[dep].resolved);
          if (!instances_[dep].value) {
            all = false;
            break;
          }
        }
        if (all) {
          leaf_values[leaf] = true;
          break;
        }
      }
      inst.leaf_witnesses[leaf].clear();  // release memory early
    }
    inst.value = p.Evaluate(leaf_values);
    inst.resolved = true;
    if (trace_) {
      trace_->Add({TraceEvent::Kind::kInstanceResolve, inst.anchor, inst.pred,
                   inst.value});
    }
  }
}

void HypeEngine::Leave() {
  assert(depth_ > 1);
  Frame& cur = CurFrame();
  // Text checks resolve now that the element's direct text is complete.
  for (PendingText& pt : cur.pending_text) {
    if (cur.direct_text == *pt.value) {
      Witness(pt.owner, pt.leaf, std::move(pt.guard));
    }
  }
  cur.pending_text.clear();
  ResolveFrame(&cur);
  PopFrame();
}

const std::vector<int32_t>& HypeEngine::FinishDocument() {
  if (finished_) return answers_;
  assert(depth_ == 1);  // only the virtual document frame remains
  // The virtual document node has no text; pending checks fail naturally.
  ResolveFrame(&CurFrame());
  PopFrame();
  answers_ = cans_.Select(instances_);
  stats_.answers = answers_.size();
  stats_.tree_passes = 1;
  stats_.aux_passes = 1;
  if (trace_) {
    for (int32_t id : answers_) {
      trace_->Add({TraceEvent::Kind::kAnswer, id, -1, false});
    }
  }
  finished_ = true;
  return answers_;
}

}  // namespace smoqe::eval
