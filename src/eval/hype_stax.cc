#include "src/eval/hype_stax.h"

#include <algorithm>
#include <map>

#include "src/common/strings.h"
#include "src/xml/stax.h"

namespace smoqe::eval {

namespace {

class StaxAttrs : public AttrProvider {
 public:
  StaxAttrs(const std::vector<xml::StaxAttr>& attrs,
            const xml::NameTable& names)
      : attrs_(attrs), names_(names) {}

  const char* Find(xml::NameId name) const override {
    const std::string& want = names_.NameOf(name);
    for (const xml::StaxAttr& a : attrs_) {
      if (a.name == want) return a.value.c_str();
    }
    return nullptr;
  }

 private:
  const std::vector<xml::StaxAttr>& attrs_;
  const xml::NameTable& names_;
};

/// An in-flight subtree capture for one candidate element.
struct Capture {
  int32_t engine_id;
  int open_depth;  ///< reader depth at which the capture started
  std::string buffer;
};

// Appends "<name a="v"" without the closing '>', which is emitted lazily
// so empty elements serialize as "<name/>" exactly like the DOM
// serializer (captures and SerializeNode must agree byte-for-byte).
void AppendOpenTag(const xml::StaxReader& reader, std::string* out) {
  *out += '<';
  *out += reader.name();
  for (const xml::StaxAttr& a : reader.attrs()) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    *out += XmlEscape(a.value);
    *out += '"';
  }
}

}  // namespace

Result<StaxEvalResult> EvalHypeStax(const automata::Mfa& mfa,
                                    std::string_view xml,
                                    const StaxEvalOptions& options) {
  xml::StaxOptions stax_options;
  stax_options.skip_whitespace_text = options.skip_whitespace_text;
  xml::StaxReader reader(xml, stax_options);
  xml::NameTable* names = mfa.names().get();

  HypeEngine engine(mfa, options.engine);
  StaxEvalResult result;
  std::vector<Capture> captures;
  std::map<int32_t, std::string> finished_captures;
  size_t peak_buffered = 0;
  bool tag_open = false;  // captures have an unclosed start tag pending

  // When the engine says a subtree is skippable, we fast-forward the
  // reader: consume events without engine calls until the element closes,
  // feeding only its direct text when requested. Active captures still
  // need the serialized events, so we only fast-forward capture-free.
  int skip_depth = -1;       // depth of the skipped element, -1 = none
  bool skip_needs_text = false;

  while (true) {
    SMOQE_ASSIGN_OR_RETURN(xml::StaxEvent ev, reader.Next());
    const int depth = reader.depth();

    if (skip_depth >= 0) {
      switch (ev) {
        case xml::StaxEvent::kCharacters:
          if (skip_needs_text && depth == skip_depth) {
            engine.Text(reader.text());
          }
          break;
        case xml::StaxEvent::kEndElement:
          if (depth == skip_depth - 1) {
            engine.Leave();
            skip_depth = -1;
          }
          break;
        case xml::StaxEvent::kStartElement:
          engine.mutable_stats()->nodes_pruned += 1;
          break;
        case xml::StaxEvent::kEndDocument:
          return Status::Internal("document ended inside a skipped subtree");
        default:
          break;
      }
      continue;
    }

    switch (ev) {
      case xml::StaxEvent::kStartDocument:
        continue;
      case xml::StaxEvent::kStartElement: {
        xml::NameId label = names->Intern(reader.name());
        StaxAttrs attrs(reader.attrs(), *names);
        size_t candidates_before = engine.cans().node_count();
        int32_t id = engine.next_id();
        HypeEngine::EnterResult r = engine.Enter(label, attrs);
        // Close the enclosing element's pending start tag, serialize our
        // start tag into surrounding captures, then maybe start our own.
        if (tag_open) {
          for (Capture& c : captures) c.buffer += '>';
          tag_open = false;
        }
        for (Capture& c : captures) AppendOpenTag(reader, &c.buffer);
        if (engine.cans().node_count() > candidates_before) {
          Capture c;
          c.engine_id = id;
          c.open_depth = depth;
          AppendOpenTag(reader, &c.buffer);
          captures.push_back(std::move(c));
        }
        if (!captures.empty()) tag_open = true;
        if (r.can_skip_subtree && captures.empty()) {
          skip_depth = depth;
          skip_needs_text = r.needs_direct_text;
        }
        break;
      }
      case xml::StaxEvent::kCharacters: {
        engine.Text(reader.text());
        if (!captures.empty()) {
          if (tag_open) {
            for (Capture& c : captures) c.buffer += '>';
            tag_open = false;
          }
          std::string escaped = XmlEscape(reader.text());
          for (Capture& c : captures) c.buffer += escaped;
        }
        break;
      }
      case xml::StaxEvent::kEndElement: {
        if (tag_open) {
          // The closing element is empty: finish it as a self-closing tag.
          for (Capture& c : captures) c.buffer += "/>";
          tag_open = false;
        } else {
          for (Capture& c : captures) {
            c.buffer += "</";
            c.buffer += reader.name();
            c.buffer += '>';
          }
        }
        size_t buffered = 0;
        for (const Capture& c : captures) buffered += c.buffer.size();
        peak_buffered = std::max(peak_buffered, buffered);
        if (!captures.empty() && captures.back().open_depth == depth + 1) {
          finished_captures.emplace(captures.back().engine_id,
                                    std::move(captures.back().buffer));
          captures.pop_back();
        }
        engine.Leave();
        break;
      }
      case xml::StaxEvent::kEndDocument: {
        const std::vector<int32_t>& ids = engine.FinishDocument();
        for (int32_t id : ids) {
          auto it = finished_captures.find(id);
          if (it == finished_captures.end()) {
            return Status::Internal("answer " + std::to_string(id) +
                                    " was never captured");
          }
          result.answers.push_back(StaxAnswer{id, std::move(it->second)});
        }
        result.stats = engine.stats();
        result.stats.buffered_bytes = peak_buffered;
        return result;
      }
    }
  }
}

}  // namespace smoqe::eval
