#include "src/eval/hype_stax.h"

#include <utility>
#include <vector>

#include "src/eval/batch.h"

namespace smoqe::eval {

// Since the service layer landed (DESIGN.md §5.2), single-query StAX
// evaluation is the N = 1 case of the batch driver: one shared scan loop
// to maintain, and every single-query test exercises the batch code path.
Result<StaxEvalResult> EvalHypeStax(const automata::Mfa& mfa,
                                    std::string_view xml,
                                    const StaxEvalOptions& options) {
  BatchStaxOptions batch_options;
  batch_options.skip_whitespace_text = options.skip_whitespace_text;
  batch_options.guard = options.guard;
  BatchEvaluator batch(batch_options);
  batch.AddPlan(&mfa, options.engine);
  SMOQE_ASSIGN_OR_RETURN(std::vector<StaxEvalResult> results, batch.Run(xml));
  return std::move(results[0]);
}

}  // namespace smoqe::eval
