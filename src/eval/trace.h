/// \file
/// \brief Trace log of one HyPE run — the engine-internals feed behind
/// the iSMOQE-style explain renderings (docs/DESIGN.md §3.2; off by
/// default via EngineOptions::trace).

#ifndef SMOQE_EVAL_TRACE_H_
#define SMOQE_EVAL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/xml/dom.h"

namespace smoqe::eval {

/// \brief Execution trace of one HyPE run — the engine-internals feed that
/// iSMOQE's visualizers render (paper §3: node coloring for visited /
/// pruned / Cans membership, Fig. 5).
///
/// Recording is off by default (EngineOptions::trace); when on, the engine
/// appends one event per interesting step.
struct TraceEvent {
  enum class Kind {
    kVisit,            ///< element entered by the traversal
    kPruneSubtree,     ///< subtree skipped (dead runs or TAX)
    kCandidate,        ///< node staged into Cans
    kAnswer,           ///< node selected by the final Cans pass
    kInstanceCreate,   ///< predicate instantiated at a node
    kInstanceResolve,  ///< predicate instance resolved (value in `flag`)
  };
  Kind kind;
  int32_t node = -1;  ///< engine (element pre-order) id
  int32_t aux = -1;   ///< pred id for instance events
  bool flag = false;  ///< resolution value
};

class TraceLog {
 public:
  void Add(TraceEvent ev) { events_.push_back(ev); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Renders the trace as an annotated tree of `doc` (one line per
  /// element): V=visited, P=pruned-under, C=candidate, A=answer — the text
  /// analogue of iSMOQE's colored tree mode. `nodes_by_engine_id` is the
  /// evaluator's mapping from engine ids to DOM nodes (engine ids skip
  /// pruned subtrees, so the mapping cannot be recomputed from the tree).
  std::string RenderTree(
      const xml::Document& doc,
      const std::vector<const xml::Node*>& nodes_by_engine_id) const;

  /// One-line-per-event rendering.
  std::string RenderEvents() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_TRACE_H_
