/// \file
/// \brief Hash-consed pool of guard sets (arena-backed storage, 32-bit
/// handles) — the per-traversal conjunction store of the engine's runs
/// (docs/DESIGN.md §3.4).

#ifndef SMOQE_EVAL_GUARD_POOL_H_
#define SMOQE_EVAL_GUARD_POOL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/arena.h"
#include "src/eval/cans.h"

namespace smoqe::eval {

/// \brief Hash-consed pool of guard sets (sorted InstId conjunctions).
///
/// The HyPE hot path merges guards on every (run, transition) step; storing
/// them as per-run `std::vector`s means one heap allocation per merge. The
/// pool interns each distinct set once — elements live in an arena, handles
/// (`GuardRef`) are 32-bit, and identical merges hit the existing entry —
/// so runs, pending-text checks and witnesses carry a plain int:
///
///  * equality of two interned guards is a handle compare;
///  * subset / dominance tests run over the interned sorted storage;
///  * `kEmpty` (ref 0) is the unconditional guard.
///
/// Lifetime: entries are valid until `Reset()`, which the owning engine
/// calls per document (instances ids — the set elements — are only
/// meaningful within one traversal anyway). See docs/DESIGN.md §3.4.
///
/// With `intern = false` (the E10 ablation baseline) every merge appends a
/// fresh entry with no table lookup, reproducing the allocation-per-merge
/// behaviour of the un-interned engine; content-based Equal/IsSubset keep
/// the semantics identical. One deliberate deviation: the pre-interning
/// engine freed a guard vector with its run, while baseline entries stay
/// until Reset(). The ablation models allocation cost, not lifetime; the
/// retained footprint stays small (non-empty guards are rare — the empty
/// guard is never copied) and `entry_count()` keeps it observable.
class GuardPool {
 public:
  static constexpr GuardRef kEmpty = 0;

  explicit GuardPool(bool intern = true) : intern_(intern) { Reset(); }

  /// Drops every entry (except the canonical empty set) and recycles the
  /// backing memory. Outstanding GuardRefs become invalid.
  void Reset() {
    arena_ = std::make_unique<Arena>();
    heap_sets_.clear();
    entries_.clear();
    entries_.push_back(Entry{nullptr, 0, kHashSeed});
    buckets_.assign(kMinBuckets, -1);
    buckets_[kHashSeed & (kMinBuckets - 1)] = 0;
    hits_ = 0;
    misses_ = 0;
  }

  /// Interns the sorted, duplicate-free set `data[0..len)`.
  GuardRef Intern(const InstId* data, size_t len) {
    if (len == 0) return kEmpty;
    return InternHashed(data, len, Hash(data, len));
  }

  /// Returns base ∪ {extra}. When `extra` already belongs to `base` the
  /// handle is returned unchanged (no lookup, no copy).
  GuardRef Merge(GuardRef base, InstId extra) {
    const Entry& e = entries_[static_cast<size_t>(base)];
    const InstId* lo = std::lower_bound(e.data, e.data + e.len, extra);
    if (lo != e.data + e.len && *lo == extra) return base;
    scratch_.clear();
    scratch_.reserve(e.len + 1);
    scratch_.insert(scratch_.end(), e.data, lo);
    scratch_.push_back(extra);
    scratch_.insert(scratch_.end(), lo, e.data + e.len);
    return InternHashed(scratch_.data(), scratch_.size(),
                        Hash(scratch_.data(), scratch_.size()));
  }

  /// Appends a fresh copy of `g`'s storage and returns its handle. This is
  /// the ablation baseline for run advancement: the pre-interning engine
  /// copied the guard vector every time a run crossed a transition, so
  /// with interning off the engine routes copies through here to keep that
  /// cost observable. The empty guard is never copied (an empty vector
  /// copy did not allocate either).
  GuardRef CopyFresh(GuardRef g) {
    const Entry& e = entries_[static_cast<size_t>(g)];
    if (e.len == 0) return kEmpty;
    ++misses_;
    return Append(e.data, e.len, e.hash);
  }

  const InstId* data(GuardRef g) const {
    return entries_[static_cast<size_t>(g)].data;
  }
  size_t size(GuardRef g) const {
    return entries_[static_cast<size_t>(g)].len;
  }

  bool Equal(GuardRef a, GuardRef b) const {
    if (a == b) return true;
    if (intern_) return false;  // interned: one handle per distinct set
    const Entry& ea = entries_[static_cast<size_t>(a)];
    const Entry& eb = entries_[static_cast<size_t>(b)];
    return ea.len == eb.len && ea.hash == eb.hash &&
           std::equal(ea.data, ea.data + ea.len, eb.data);
  }

  /// a ⊆ b over the interned sorted storage.
  bool IsSubset(GuardRef a, GuardRef b) const {
    if (a == b || a == kEmpty) return true;
    const Entry& ea = entries_[static_cast<size_t>(a)];
    const Entry& eb = entries_[static_cast<size_t>(b)];
    if (ea.len > eb.len) return false;
    return std::includes(eb.data, eb.data + eb.len, ea.data,
                         ea.data + ea.len);
  }

  /// Copies an interned guard out into an owning GuardSet (used when
  /// handing guards to structures that outlive pool entries' relevance,
  /// e.g. Cans alternatives).
  GuardSet Materialize(GuardRef g) const {
    const Entry& e = entries_[static_cast<size_t>(g)];
    return GuardSet(e.data, e.data + e.len);
  }

  /// Number of non-empty pool entries (with interning on: distinct
  /// non-empty guard sets seen, so entry_count() == misses()). The
  /// canonical empty sentinel is not counted.
  size_t entry_count() const { return entries_.size() - 1; }
  /// Intern calls answered by an existing entry / forced to allocate.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t bytes_used() const { return arena_->bytes_used(); }

 private:
  struct Entry {
    const InstId* data;
    uint32_t len;
    uint32_t hash;
  };

  static constexpr size_t kMinBuckets = 64;
  static constexpr uint32_t kHashSeed = 0x811c9dc5u;

  static uint32_t Hash(const InstId* data, size_t len) {
    uint32_t h = kHashSeed;
    for (size_t i = 0; i < len; ++i) {
      h ^= static_cast<uint32_t>(data[i]);
      h *= 0x01000193u;  // FNV-1a over the element stream
    }
    return h;
  }

  GuardRef InternHashed(const InstId* data, size_t len, uint32_t hash) {
    if (intern_) {
      size_t mask = buckets_.size() - 1;
      size_t slot = hash & mask;
      while (buckets_[slot] >= 0) {
        const Entry& e = entries_[static_cast<size_t>(buckets_[slot])];
        if (e.hash == hash && e.len == len &&
            std::equal(e.data, e.data + e.len, data)) {
          ++hits_;
          return buckets_[slot];
        }
        slot = (slot + 1) & mask;
      }
      ++misses_;
      GuardRef ref = Append(data, len, hash);
      buckets_[slot] = ref;
      if (entries_.size() * 2 > buckets_.size()) Rehash();
      return ref;
    }
    ++misses_;
    return Append(data, len, hash);
  }

  GuardRef Append(const InstId* data, size_t len, uint32_t hash) {
    InstId* stored;
    if (intern_) {
      // Interned sets are few (one per distinct guard) and live for the
      // whole document: bump-allocate.
      stored = static_cast<InstId*>(
          arena_->Allocate(len * sizeof(InstId), alignof(InstId)));
    } else {
      // Ablation baseline: the un-interned engine kept each guard in its
      // own heap vector, paying one allocation per copy/merge — reproduce
      // that cost (individual heap blocks, not the arena).
      heap_sets_.push_back(std::make_unique<InstId[]>(len));
      stored = heap_sets_.back().get();
    }
    std::memcpy(stored, data, len * sizeof(InstId));
    entries_.push_back(Entry{stored, static_cast<uint32_t>(len), hash});
    return static_cast<GuardRef>(entries_.size()) - 1;
  }

  void Rehash() {
    buckets_.assign(buckets_.size() * 2, -1);
    size_t mask = buckets_.size() - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t slot = entries_[i].hash & mask;
      while (buckets_[slot] >= 0) slot = (slot + 1) & mask;
      buckets_[slot] = static_cast<GuardRef>(i);
    }
  }

  bool intern_;
  std::unique_ptr<Arena> arena_;
  std::vector<std::unique_ptr<InstId[]>> heap_sets_;
  std::vector<Entry> entries_;
  std::vector<GuardRef> buckets_;
  std::vector<InstId> scratch_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_GUARD_POOL_H_
