#include "src/eval/cans.h"

#include <algorithm>
#include <cassert>

namespace smoqe::eval {

namespace {

bool IsSubset(const GuardSet& a, const GuardSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

void Cans::Add(int32_t id, GuardSet guard) {
  ++entries_;
  if (nodes_.empty() || nodes_.back().id != id) {
    // Entries for one node are contiguous (all added when it is entered).
    assert(nodes_.empty() || nodes_.back().id < id);
    nodes_.push_back(Node{id, {}});
  }
  std::vector<GuardSet>& alts = nodes_.back().alternatives;
  // Weaker guards dominate; an unconditional entry clears the rest.
  for (const GuardSet& g : alts) {
    if (IsSubset(g, guard)) return;
  }
  alts.erase(std::remove_if(alts.begin(), alts.end(),
                            [&](const GuardSet& g) {
                              return IsSubset(guard, g);
                            }),
             alts.end());
  alts.push_back(std::move(guard));
}

std::vector<int32_t> Cans::Select(
    const std::vector<PredInstance>& instances) const {
  std::vector<int32_t> out;
  for (const Node& n : nodes_) {
    for (const GuardSet& g : n.alternatives) {
      bool all = true;
      for (InstId i : g) {
        const PredInstance& inst = instances[i];
        assert(inst.resolved);
        if (!inst.value) {
          all = false;
          break;
        }
      }
      if (all) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

}  // namespace smoqe::eval
