/// \file
/// \brief Cans — the candidate-answer store — plus the guard and
/// predicate-instance records that HyPE's single pass resolves against
/// (docs/DESIGN.md §3.2).

#ifndef SMOQE_EVAL_CANS_H_
#define SMOQE_EVAL_CANS_H_

#include <cstdint>
#include <vector>

#include "src/automata/nfa.h"

namespace smoqe::eval {

/// Index of a predicate instance in an engine run.
using InstId = int32_t;

/// Sorted conjunction of predicate-instance ids; empty = unconditional.
using GuardSet = std::vector<InstId>;

/// Handle of a guard set interned in the engine's GuardPool (32-bit;
/// 0 = the empty, unconditional guard). Valid for one document traversal.
using GuardRef = int32_t;

/// One predicate instantiated at one anchor node during the traversal.
struct PredInstance {
  automata::PredId pred = -1;
  int32_t anchor = -1;  ///< engine (element pre-order) id of the anchor
  bool resolved = false;
  bool value = false;
  /// Conditional witnesses per leaf position of the predicate: the leaf is
  /// true iff some witness guard is fully true at resolution time. Guards
  /// are GuardPool handles owned by the engine that built the instance.
  std::vector<std::vector<GuardRef>> leaf_witnesses;
};

/// \brief Cans — the candidate-answer store of HyPE (paper §3, Evaluator).
///
/// During the single document traversal, nodes reached in an accepting
/// selection state are appended together with the guard (set of pending
/// predicate instances) of the run that reached them. After the traversal
/// — when every instance has resolved — one pass over Cans selects the
/// nodes with a fully-true guard alternative. Entries are appended at node
/// entry, so they are already in document order.
class Cans {
 public:
  /// Stages node `id` under `guard`. Consecutive calls for the same node
  /// maintain a dominance-pruned alternative list (an empty guard makes
  /// the node unconditional and drops the other alternatives).
  void Add(int32_t id, GuardSet guard);

  /// Number of staged candidate entries (Σ alternatives).
  size_t entry_count() const { return entries_; }
  /// Number of distinct candidate nodes.
  size_t node_count() const { return nodes_.size(); }

  /// The single post-traversal pass: returns ids (document order) whose
  /// guard alternatives contain one with every instance resolved true.
  std::vector<int32_t> Select(const std::vector<PredInstance>& instances) const;

 private:
  struct Node {
    int32_t id;
    std::vector<GuardSet> alternatives;
  };
  std::vector<Node> nodes_;
  size_t entries_ = 0;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_CANS_H_
