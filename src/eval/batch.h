/// \file
/// \brief Multi-query batch evaluation over a single StAX pass — the
/// service-layer half of the evaluator (docs/DESIGN.md §5.2, §7).
///
/// N compiled plans (MFAs sharing one name table) are advanced in
/// lockstep over one forward scan of the XML text: the event stream, the
/// name-table lookups, the element depth bookkeeping and the answer
/// captures are shared across plans, while every plan keeps its own HyPE
/// run sets and guards. Per-event cost therefore grows sublinearly in N —
/// tokenization and capture serialization are paid once per document, not
/// once per query (experiment E11, bench/bench_batch.cc).
///
/// RunParallel adds the second axis (experiment E13): one thread keeps
/// the shared tokenizer, while per-plan engine advancement — the part
/// that grows linearly in N — fans out across a thread pool in event
/// chunks. Answers are byte-identical to Run (and to N sequential
/// passes); only wall-clock changes.

#ifndef SMOQE_EVAL_BATCH_H_
#define SMOQE_EVAL_BATCH_H_

#include <string_view>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/eval/hype_stax.h"
#include "src/telemetry/metrics.h"

namespace smoqe::eval {

/// Options shared by every plan of a batch evaluation.
struct BatchStaxOptions {
  /// Drop all-whitespace text events (matches the DOM parser's default).
  bool skip_whitespace_text = true;
  /// Per-request guardrail (deadline/cancel/budget); nullptr = ungoverned.
  /// Checked at the scan loop (serial) / between chunks (parallel); a
  /// tripped guard unwinds the whole batch — never partial answers.
  const Guardrail* guard = nullptr;
};

/// Knobs of the parallel batch driver (RunParallel).
struct BatchParallelOptions {
  /// Pool supplying the worker threads; nullptr uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Events decoded per tokenizer chunk. Each chunk is one fork/join
  /// round: big enough to amortize the barrier, small enough that the
  /// decoded-event buffer stays cache-resident. 4096 events ≈ a few
  /// hundred KB.
  size_t chunk_events = 4096;
  /// Optional telemetry sink: wall-clock nanoseconds of each fork/join
  /// round (submit → capture replay done) is Record()ed here, one sample
  /// per chunk. Null = no timing taken.
  telemetry::Histogram* chunk_ns = nullptr;
};

/// \brief Runs many compiled plans over one streaming scan per document.
///
/// Usage (one instance can serve many documents — plans are fixed,
/// engines are per-Run):
///
///     eval::BatchEvaluator batch;
///     batch.AddPlan(&mfa_nurse);
///     batch.AddPlan(&mfa_research, per_plan_engine_options);
///     auto results = batch.Run(xml_text);   // results->at(i) ↔ plan i
///
/// Sharing model (DESIGN.md §5.2): the driver owns the StAX reader, one
/// interned label per start tag, one attribute view per element, and one
/// capture stack — a candidate subtree staged by *any* plan is serialized
/// exactly once and demultiplexed to every plan that answers it. Each
/// plan runs its own HypeEngine (own frames/runs/guards), and a plan
/// whose runs die under dead-run pruning stops receiving events for that
/// subtree while the scan continues for the others.
///
/// Answers are byte-identical to N sequential EvalHypeStax passes
/// (differential-tested); per-plan `stats.buffered_bytes` reports the
/// shared peak capture footprint of the pass.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(BatchStaxOptions options = {});

  /// Registers a compiled plan; returns its index in Run's result vector.
  /// Every plan must share the first plan's name table (checked by Run).
  /// The MFA must stay alive for the evaluator's lifetime.
  int AddPlan(const automata::Mfa* mfa, const EngineOptions& engine = {});

  /// Evaluates every registered plan in one forward scan of `xml`.
  /// Result i holds plan i's answers in document order.
  Result<std::vector<StaxEvalResult>> Run(std::string_view xml) const;

  /// Like Run, but plan advancement is parallel (docs/DESIGN.md §7.3):
  /// the calling thread decodes events into chunks (and tokenizes chunk
  /// k+1 while workers run chunk k), worker threads advance disjoint plan
  /// groups through each chunk, and the caller replays the shared capture
  /// stream after each join. Every engine sees exactly the event sequence
  /// Run would deliver, so answers and per-plan stats are identical.
  /// Falls back to Run when the pool has no workers or there are fewer
  /// than two plans.
  Result<std::vector<StaxEvalResult>> RunParallel(
      std::string_view xml, const BatchParallelOptions& par = {}) const;

  size_t plan_count() const { return plans_.size(); }

  /// Folds the per-plan stats of one batch into a single batch-level
  /// EvalStats via EvalStats::MergeFrom — identical for Run and
  /// RunParallel since the per-plan stats are (asserted in the
  /// concurrency suite).
  static EvalStats AggregateStats(const std::vector<StaxEvalResult>& results);

 private:
  struct Plan {
    const automata::Mfa* mfa;
    EngineOptions engine;
  };

  BatchStaxOptions options_;
  std::vector<Plan> plans_;
};

/// One-shot convenience wrapper: evaluates `plans` (shared `engine`
/// options) over `xml` in a single pass. EvalHypeStax is this with N = 1.
Result<std::vector<StaxEvalResult>> EvalHypeStaxBatch(
    const std::vector<const automata::Mfa*>& plans, std::string_view xml,
    const BatchStaxOptions& options = {}, const EngineOptions& engine = {});

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_BATCH_H_
