#include "src/eval/two_pass.h"

#include <algorithm>

#include "src/common/bitset.h"

namespace smoqe::eval {

using automata::AcceptTest;
using automata::FlatNfa;
using automata::Mfa;
using automata::Obligation;
using automata::ObligationId;
using automata::Pred;
using automata::PredId;
using automata::PredSet;

namespace {

/// Computation order of obligations and predicates respecting their
/// nesting dependencies (an obligation's NFA charges predicates; a
/// predicate's leaves are obligations). Item = (is_pred, id).
struct DependencyOrder {
  std::vector<std::pair<bool, int>> items;

  static DependencyOrder Compute(const Mfa& mfa) {
    const size_t num_obs = mfa.obligations().size();
    const size_t num_preds = mfa.preds().size();
    // Edges: ob -> preds charged in its NFA; pred -> its leaf obligations.
    // Kahn topological sort; the compile order guarantees acyclicity.
    std::vector<std::vector<std::pair<bool, int>>> deps_of(num_obs +
                                                           num_preds);
    auto slot = [&](bool is_pred, int id) -> size_t {
      return is_pred ? num_obs + static_cast<size_t>(id)
                     : static_cast<size_t>(id);
    };
    for (size_t ob = 0; ob < num_obs; ++ob) {
      const FlatNfa& nfa = mfa.obligations()[ob].nfa;
      auto add = [&](const PredSet& s) {
        for (PredId p : s) deps_of[slot(false, static_cast<int>(ob))]
            .push_back({true, p});
      };
      for (const auto& [st, g] : nfa.initial) add(g);
      for (const PredSet& g : nfa.initial_accept_guards) add(g);
      for (const FlatNfa::State& st : nfa.states) {
        for (const FlatNfa::Transition& t : st.trans) {
          add(t.src_preds);
          add(t.dst_preds);
        }
        for (const PredSet& g : st.accept_guards) add(g);
      }
    }
    for (size_t p = 0; p < num_preds; ++p) {
      for (ObligationId ob : mfa.preds()[p].leaf_obligations) {
        deps_of[slot(true, static_cast<int>(p))].push_back({false, ob});
      }
    }

    DependencyOrder order;
    std::vector<int> state(num_obs + num_preds, 0);  // 0 new, 1 open, 2 done
    // Iterative DFS post-order.
    std::vector<std::pair<std::pair<bool, int>, size_t>> stack;
    auto visit = [&](std::pair<bool, int> item) {
      if (state[slot(item.first, item.second)] != 0) return;
      stack.push_back({item, 0});
      state[slot(item.first, item.second)] = 1;
      while (!stack.empty()) {
        auto& [cur, next_dep] = stack.back();
        auto& deps = deps_of[slot(cur.first, cur.second)];
        if (next_dep < deps.size()) {
          auto dep = deps[next_dep++];
          if (state[slot(dep.first, dep.second)] == 0) {
            state[slot(dep.first, dep.second)] = 1;
            stack.push_back({dep, 0});
          }
        } else {
          state[slot(cur.first, cur.second)] = 2;
          order.items.push_back(cur);
          stack.pop_back();
        }
      }
    };
    for (size_t ob = 0; ob < num_obs; ++ob) visit({false, static_cast<int>(ob)});
    for (size_t p = 0; p < num_preds; ++p) visit({true, static_cast<int>(p)});
    return order;
  }
};

/// Arb-style binary (array) representation built by the conversion pass.
struct BinaryDoc {
  std::vector<xml::NameId> label;       // by node id; kNoName for text
  std::vector<int32_t> first_child;     // -1 if none
  std::vector<int32_t> next_sibling;    // -1 if none
  std::vector<const xml::Node*> nodes;  // back-pointers for answers/attrs
};

BinaryDoc ConvertToBinary(const xml::Document& doc) {
  BinaryDoc bin;
  const int32_t n = doc.num_nodes();
  bin.label.resize(n);
  bin.first_child.assign(n, -1);
  bin.next_sibling.assign(n, -1);
  bin.nodes.resize(n);
  for (int32_t id = 0; id < n; ++id) {
    const xml::Node* node = doc.node(id);
    if (node == nullptr) {  // id retired by an update; never reached by DFS
      bin.label[id] = xml::kNoName;
      continue;
    }
    bin.nodes[id] = node;
    bin.label[id] = node->is_element() ? node->label : xml::kNoName;
    bin.first_child[id] =
        node->first_child != nullptr ? node->first_child->node_id : -1;
    bin.next_sibling[id] =
        node->next_sibling != nullptr ? node->next_sibling->node_id : -1;
  }
  return bin;
}

class TwoPassRun {
 public:
  TwoPassRun(const Mfa& mfa, const xml::Document& doc)
      : mfa_(mfa), doc_(doc) {}

  TwoPassResult Run() {
    TwoPassResult result;
    // Pass 0: format conversion.
    bin_ = ConvertToBinary(doc_);
    ++result.stats.tree_passes;

    // Pass 1: bottom-up predicate/obligation tables.
    BottomUp(&result.stats);
    ++result.stats.tree_passes;

    // Pass 2: top-down selection.
    TopDown(&result);
    ++result.stats.tree_passes;

    result.stats.answers = result.answers.size();
    return result;
  }

 private:
  bool PredTrueAt(int32_t node, PredId p) const {
    // node == -1 is the virtual document node (tables computed last).
    return node < 0 ? virtual_pred_[p] : pred_val_[p][node];
  }

  bool AllPredsTrue(int32_t node, const PredSet& s) const {
    for (PredId p : s) {
      if (!PredTrueAt(node, p)) return false;
    }
    return true;
  }

  bool AcceptTestAt(int32_t node, const AcceptTest& test) const {
    if (node < 0) return test.kind == AcceptTest::Kind::kExists;
    const xml::Node* n = bin_.nodes[node];
    switch (test.kind) {
      case AcceptTest::Kind::kExists:
        return true;
      case AcceptTest::Kind::kTextEq:
        return xml::Document::DirectText(n) == test.value;
      case AcceptTest::Kind::kAttrExists:
        return n->FindAttr(test.attr) != nullptr;
      case AcceptTest::Kind::kAttrEq: {
        const char* v = n->FindAttr(test.attr);
        return v != nullptr && test.value == v;
      }
    }
    return false;
  }

  /// reach_[ob][node].Test(s): running obligation ob from `node` in state
  /// s accepts at the node or within its subtree.
  void ComputeReach(int32_t node, ObligationId ob) {
    const Obligation& o = mfa_.obligations()[ob];
    const FlatNfa& nfa = o.nfa;
    DynamicBitset bits(nfa.states.size());
    for (size_t s = 0; s < nfa.states.size(); ++s) {
      // Accept here?
      bool acc = false;
      for (const PredSet& g : nfa.states[s].accept_guards) {
        if (AllPredsTrue(node, g) && AcceptTestAt(node, o.test)) {
          acc = true;
          break;
        }
      }
      if (acc) {
        bits.Set(s);
        continue;
      }
      // Or via a child transition.
      int32_t child =
          node < 0 ? doc_.root()->node_id : bin_.first_child[node];
      for (; child >= 0 && !acc; child = bin_.next_sibling[child]) {
        if (node < 0 && child != doc_.root()->node_id) break;
        if (bin_.label[child] == xml::kNoName) continue;  // text
        for (const FlatNfa::Transition& t : nfa.states[s].trans) {
          if (!t.test.Matches(bin_.label[child])) continue;
          if (!reach_[ob][child].Test(t.target)) continue;
          if (!AllPredsTrue(node, t.src_preds)) continue;
          if (!AllPredsTrue(child, t.dst_preds)) continue;
          acc = true;
          break;
        }
      }
      if (acc) bits.Set(s);
    }
    if (node < 0) {
      virtual_reach_[ob] = std::move(bits);
    } else {
      reach_[ob][node] = std::move(bits);
    }
  }

  bool ObligationHoldsAt(int32_t node, ObligationId ob) const {
    const FlatNfa& nfa = mfa_.obligations()[ob].nfa;
    const DynamicBitset& bits =
        node < 0 ? virtual_reach_[ob] : reach_[ob][node];
    for (const auto& [state, guards] : nfa.initial) {
      if (AllPredsTrue(node, guards) && bits.Test(state)) return true;
    }
    // ε acceptance at the node itself is already included: the initial
    // state's accept guards are evaluated by ComputeReach at this node.
    return false;
  }

  void ComputePred(int32_t node, PredId p) {
    const Pred& pred = mfa_.preds()[p];
    std::vector<bool> leaves(pred.leaf_obligations.size());
    for (size_t l = 0; l < leaves.size(); ++l) {
      leaves[l] = ObligationHoldsAt(node, pred.leaf_obligations[l]);
    }
    bool v = pred.Evaluate(leaves);
    if (node < 0) {
      virtual_pred_[p] = v;
    } else {
      pred_val_[p][node] = v;
    }
  }

  void BottomUp(EvalStats* stats) {
    const int32_t n = doc_.num_nodes();
    order_ = DependencyOrder::Compute(mfa_);
    reach_.resize(mfa_.obligations().size());
    for (auto& r : reach_) r.resize(n);
    pred_val_.resize(mfa_.preds().size());
    for (auto& pv : pred_val_) pv.assign(n, 0);
    virtual_reach_.resize(mfa_.obligations().size());
    virtual_pred_.assign(mfa_.preds().size(), 0);

    // Children have larger pre-order ids: reverse id order = bottom-up.
    for (int32_t node = n - 1; node >= 0; --node) {
      if (bin_.label[node] == xml::kNoName) continue;  // text node
      ++stats->nodes_visited;
      for (const auto& [is_pred, id] : order_.items) {
        if (is_pred) {
          ComputePred(node, id);
        } else {
          ComputeReach(node, id);
        }
      }
    }
    // Virtual document node last (its only child is the root).
    for (const auto& [is_pred, id] : order_.items) {
      if (is_pred) {
        ComputePred(-1, id);
      } else {
        ComputeReach(-1, id);
      }
    }
  }

  void TopDown(TwoPassResult* result) {
    const FlatNfa& sel = mfa_.selection();
    // State sets per node; DFS carrying parent sets.
    struct Item {
      int32_t node;
      DynamicBitset states;
    };
    // Initial states at the virtual document node.
    DynamicBitset init(sel.states.size());
    for (const auto& [state, guards] : sel.initial) {
      if (AllPredsTrue(-1, guards)) init.Set(state);
    }
    std::vector<Item> stack;
    stack.push_back({-1, std::move(init)});
    while (!stack.empty()) {
      Item item = std::move(stack.back());
      stack.pop_back();
      ++result->stats.nodes_visited;

      // Accept check (not for the virtual node).
      if (item.node >= 0) {
        bool accepted = false;
        item.states.ForEachSetBit([&](size_t s) {
          if (accepted) return;
          for (const PredSet& g : sel.states[s].accept_guards) {
            if (AllPredsTrue(item.node, g)) {
              accepted = true;
              return;
            }
          }
        });
        if (accepted) result->answers.push_back(bin_.nodes[item.node]);
      }

      // Advance to element children.
      int32_t child = item.node < 0 ? doc_.root()->node_id
                                    : bin_.first_child[item.node];
      std::vector<Item> kids;
      for (; child >= 0; child = bin_.next_sibling[child]) {
        if (item.node < 0 && child != doc_.root()->node_id) break;
        if (bin_.label[child] == xml::kNoName) continue;
        DynamicBitset next(sel.states.size());
        bool any = false;
        item.states.ForEachSetBit([&](size_t s) {
          for (const FlatNfa::Transition& t : sel.states[s].trans) {
            if (!t.test.Matches(bin_.label[child])) continue;
            if (next.Test(static_cast<size_t>(t.target))) continue;
            if (!AllPredsTrue(item.node, t.src_preds)) continue;
            if (!AllPredsTrue(child, t.dst_preds)) continue;
            next.Set(static_cast<size_t>(t.target));
            any = true;
          }
        });
        if (any) kids.push_back({child, std::move(next)});
      }
      // Preserve document order in the answer list: push in reverse.
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(std::move(*it));
      }
    }
    // DFS with reversed pushes emits answers in document order already,
    // but sort defensively (cheap, answers are few).
    std::sort(result->answers.begin(), result->answers.end(),
              [](const xml::Node* a, const xml::Node* b) {
                return a->order < b->order;
              });
    result->answers.erase(
        std::unique(result->answers.begin(), result->answers.end()),
        result->answers.end());
  }

  const Mfa& mfa_;
  const xml::Document& doc_;
  BinaryDoc bin_;
  DependencyOrder order_;
  // reach_[ob][node] — obligation state reachability within subtree.
  std::vector<std::vector<DynamicBitset>> reach_;
  std::vector<DynamicBitset> virtual_reach_;
  // pred_val_[pred][node].
  std::vector<std::vector<char>> pred_val_;
  std::vector<char> virtual_pred_;
};

}  // namespace

Result<TwoPassResult> EvalTwoPass(const Mfa& mfa, const xml::Document& doc) {
  if (mfa.names() != doc.names()) {
    return Status::InvalidArgument(
        "MFA and document must share one name table");
  }
  TwoPassRun run(mfa, doc);
  return run.Run();
}

}  // namespace smoqe::eval
