/// \file
/// \brief The HyPE engine: per-open-element frames of (state, guard)
/// runs advanced over one pre-order traversal, with the label-dispatch /
/// guard-interning / hashed-dedup hot path (docs/DESIGN.md §3.2–§3.5).
/// Drivers: hype_dom.h (DOM), hype_stax.h / batch.h (streaming).

#ifndef SMOQE_EVAL_ENGINE_H_
#define SMOQE_EVAL_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/automata/mfa.h"
#include "src/common/bitset.h"
#include "src/common/counters.h"
#include "src/eval/cans.h"
#include "src/eval/guard_pool.h"
#include "src/eval/trace.h"

namespace smoqe::eval {

/// Attribute access abstraction so the engine is agnostic to DOM vs StAX
/// attribute storage (one virtual call per attribute test).
class AttrProvider {
 public:
  virtual ~AttrProvider() = default;
  /// Value of the attribute or nullptr. `name` is an interned id of the
  /// engine's shared name table.
  virtual const char* Find(xml::NameId name) const = 0;

  /// A provider with no attributes.
  static const AttrProvider& None();
};

/// Engine options. The pruning and hot-path flags exist for the E9/E10
/// ablation benchmarks — disabling them never changes answers (tested),
/// only work.
struct EngineOptions {
  /// Record a TraceLog (costs time/memory; for the explain tooling).
  bool trace = false;
  /// Skip subtrees once every automaton run has died.
  bool dead_run_pruning = true;
  /// Drop (state, guard) pairs whose guard is a superset of an existing
  /// pair's (conjunction dominance); when off, only exact duplicates are
  /// deduplicated.
  bool guard_dominance = true;
  /// Advance runs through the FlatNfa label-dispatch table (one span
  /// lookup per (run, label)) instead of scanning every transition and
  /// calling LabelTest::Matches.
  bool label_dispatch = true;
  /// Hash-cons guard sets in the GuardPool so merges that reproduce a
  /// known set cost a table hit instead of an allocation, and guard
  /// equality is a handle compare. Off: every merge appends fresh storage.
  bool guard_interning = true;
  /// Deduplicate new runs through a per-frame open-addressing index keyed
  /// on (is_selection, ob, owner, leaf, state) instead of a linear scan of
  /// the frame's runs.
  bool hashed_run_dedup = true;
};

/// \brief HyPE — hybrid pass evaluation (paper §3, Evaluator).
///
/// The engine consumes one pre-order traversal of an element tree —
/// `Enter` / `Text` / `Leave` events from either a DOM walk or a StAX
/// scan — and maintains, per open element, the set of active
/// (automaton state, guard) pairs:
///
///  * selection runs advance the MFA's selection NFA; reaching an accept
///    state stages the node in **Cans** under the run's guard;
///  * predicate instantiation anchors a `PredInstance` at the node and
///    launches obligation runs that advance the predicate's path NFAs;
///    their acceptances record (conditional) witnesses;
///  * when an element closes, the instances anchored at it resolve —
///    every obligation witness lies in its subtree, so resolution is
///    definite (this is what makes negation safe in a single pass);
///  * after the traversal, one pass over Cans picks the nodes with a
///    fully-true guard alternative (`FinishDocument`).
///
/// Pruning: `Enter` reports whether the subtree can be skipped — always
/// when every run died; under TAX (pass `subtree_types`) also when no
/// active automaton can consume any element type occurring below the node
/// (experiment E6). The caller must still deliver direct text when
/// `needs_direct_text` is set (pending text()=… checks), then call
/// `Leave`.
class HypeEngine {
 public:
  HypeEngine(const automata::Mfa& mfa, EngineOptions options = {});
  ~HypeEngine();

  struct EnterResult {
    bool can_skip_subtree = false;
    bool needs_direct_text = false;
  };

  /// Enters the next element (pre-order). `subtree_types` is the TAX
  /// descendant-type set of this node, or nullptr when no index is in use.
  EnterResult Enter(xml::NameId label, const AttrProvider& attrs,
                    const DynamicBitset* subtree_types = nullptr);

  /// Delivers text content directly under the current element. Inline:
  /// drivers call this once per text event per plan, and almost always
  /// no run is waiting on text (the needs_text test is the whole call).
  void Text(std::string_view text) {
    Frame& cur = CurFrame();
    if (cur.needs_text) cur.direct_text.append(text);
  }

  /// Closes the current element.
  void Leave();

  /// Ends the traversal and runs the Cans selection pass. Returns the
  /// engine ids (element pre-order numbers, document order) of answers.
  const std::vector<int32_t>& FinishDocument();

  /// Answers (valid after FinishDocument).
  const std::vector<int32_t>& answers() const { return answers_; }

  const EvalStats& stats() const { return stats_; }
  /// Drivers add counts they alone can know (e.g. nodes inside skipped
  /// subtrees).
  EvalStats* mutable_stats() { return &stats_; }
  const Cans& cans() const { return cans_; }
  const std::vector<PredInstance>& instances() const { return instances_; }
  const TraceLog* trace() const { return trace_.get(); }

  /// Engine id that will be assigned to the next entered element.
  int32_t next_id() const { return next_id_; }

  /// Approximate bytes of run/instance/frame state allocated since the
  /// last call; drivers drain this into the request's MemoryBudget at
  /// their guard ticks (the engine itself stays guard-free — plain
  /// counter, no atomics, so the hot path pays one add).
  uint64_t TakeAllocBytes() {
    uint64_t b = alloc_bytes_;
    alloc_bytes_ = 0;
    return b;
  }

 private:
  struct Run {
    bool is_selection;
    automata::ObligationId ob = -1;  // obligation runs
    InstId owner = -1;               // instance the obligation reports to
    int leaf = -1;                   // leaf position in the owner's pred
    int state = 0;
    GuardRef guard = GuardPool::kEmpty;
  };

  struct PendingText {
    InstId owner;
    int leaf;
    GuardRef guard;
    const std::string* value;  // expected text (owned by the Mfa)
  };

  struct Frame {
    int32_t id = -1;
    std::vector<Run> runs;
    std::vector<InstId> anchored;
    std::vector<PendingText> pending_text;
    std::string direct_text;
    bool needs_text = false;
    /// (pred, instance) dedup pairs; linear scan — typically ≤ 4 entries.
    std::vector<std::pair<automata::PredId, InstId>> inst_map;
    /// Same-key chain links, parallel to `runs` while the engine-level
    /// run-dedup table (see `dedup_*_` below) indexes this frame. Only the
    /// chain of runs sharing a key is walked for the dominance check.
    std::vector<int32_t> run_next;

    /// Clears for reuse, keeping vector capacities (frames are pooled —
    /// one allocation-free Enter/Leave per node on the hot path).
    void Reset(int32_t new_id) {
      id = new_id;
      runs.clear();
      anchored.clear();
      pending_text.clear();
      direct_text.clear();
      needs_text = false;
      inst_map.clear();
      run_next.clear();
    }

    InstId FindInst(automata::PredId pred) const {
      for (const auto& [p, inst] : inst_map) {
        if (p == pred) return inst;
      }
      return -1;
    }
  };

  const automata::FlatNfa& NfaOf(const Run& r) const;

  /// Instantiates `pred` at the current frame (dedup), launching its
  /// obligation runs; returns the instance id. `attrs` is the attribute
  /// provider of the node being entered — threaded explicitly through the
  /// whole Enter call path (never stashed in a global), so every piece of
  /// engine state is confined to this object and a HypeEngine can run on
  /// any thread of a parallel batch (docs/DESIGN.md §7).
  InstId Instantiate(automata::PredId pred, const AttrProvider& attrs);

  GuardRef InstantiateSet(const automata::PredSet& preds,
                          const AttrProvider& attrs);

  /// Pushes a run into the current frame with per-key dominance pruning;
  /// returns true if it survived as new work.
  bool AddRun(Run run);
  bool AddRunHashed(Frame& cur, const Run& run);
  /// (Re)seeds the dedup table with `cur`'s runs — on first use past the
  /// linear threshold and on growth.
  void SeedRunIndex(Frame& cur);

  /// Advances `r` (active at `parent`) across `t` into the current frame.
  void AdvanceRun(const Frame& parent, const Run& r,
                  const automata::FlatNfa::Transition& t,
                  const AttrProvider& attrs);

  /// Handles acceptance of `run` at the current frame.
  void HandleAccepts(const Run& run, const AttrProvider& attrs);

  /// Eagerly instantiates predicates the run may charge at this node
  /// (transition src_preds and accept guards).
  void EagerInstantiate(const Run& run, const AttrProvider& attrs);

  void Witness(InstId owner, int leaf, GuardRef guard);
  void ResolveFrame(Frame* frame);

  /// Pooled frame stack: entries [0, depth_) are active; popped frames
  /// keep their buffers for reuse.
  Frame& CurFrame() { return stack_[depth_ - 1]; }
  Frame& PushFrame(int32_t id);
  void PopFrame() { --depth_; }

  const automata::Mfa& mfa_;
  EngineOptions options_;
  GuardPool pool_;
  std::vector<Frame> stack_;
  size_t depth_ = 0;
  /// Engine-level run-dedup table (hashed_run_dedup). Runs are only ever
  /// added to the top frame while its Enter executes, so one open-
  /// addressing table serves every frame: slots are stamped with the
  /// owning frame's epoch and slots from finished frames simply go stale —
  /// no per-frame clearing, no per-frame allocation. A slot holds the
  /// newest run index of one key; Frame::run_next chains the rest.
  std::vector<uint64_t> dedup_epoch_;
  std::vector<int32_t> dedup_head_;
  uint64_t frame_epoch_ = 0;
  std::vector<PredInstance> instances_;
  Cans cans_;
  EvalStats stats_;
  std::vector<int32_t> answers_;
  std::unique_ptr<TraceLog> trace_;
  int32_t next_id_ = 0;
  uint64_t alloc_bytes_ = 0;  // drained by TakeAllocBytes()
  bool finished_ = false;
  size_t work_cursor_ = 0;  // worklist position within current frame's runs
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_ENGINE_H_
