#include "src/eval/batch.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "src/common/strings.h"
#include "src/eval/engine.h"
#include "src/xml/stax.h"

namespace smoqe::eval {

namespace {

class StaxAttrs : public AttrProvider {
 public:
  StaxAttrs(const std::vector<xml::StaxAttr>& attrs,
            const xml::NameTable& names)
      : attrs_(attrs), names_(names) {}

  const char* Find(xml::NameId name) const override {
    const std::string& want = names_.NameOf(name);
    for (const xml::StaxAttr& a : attrs_) {
      if (a.name == want) return a.value.c_str();
    }
    return nullptr;
  }

 private:
  const std::vector<xml::StaxAttr>& attrs_;
  const xml::NameTable& names_;
};

/// Attribute view over a slice of a chunk's decoded attributes (the
/// parallel driver's analogue of StaxAttrs).
class SliceAttrs : public AttrProvider {
 public:
  SliceAttrs(const xml::StaxAttr* begin, const xml::StaxAttr* end,
             const xml::NameTable& names)
      : begin_(begin), end_(end), names_(names) {}

  const char* Find(xml::NameId name) const override {
    const std::string& want = names_.NameOf(name);
    for (const xml::StaxAttr* a = begin_; a != end_; ++a) {
      if (a->name == want) return a->value.c_str();
    }
    return nullptr;
  }

 private:
  const xml::StaxAttr* begin_;
  const xml::StaxAttr* end_;
  const xml::NameTable& names_;
};

/// An in-flight subtree capture, keyed by the driver's document pre-order
/// node id. One capture per staged element regardless of how many plans
/// staged it — the serialized bytes are demultiplexed at FinishDocument.
struct Capture {
  int32_t node_id;
  int open_depth;  ///< reader depth at which the capture started
  std::string buffer;
};

/// \brief The shared answer-capture state machine, factored out so the
/// serial scan (Run) and the parallel merge (RunParallel) produce
/// byte-identical captures by construction.
///
/// Start tags are held open ("<name a=\"v\"" without the '>') and closed
/// lazily, so empty elements serialize as "<name/>" exactly like the DOM
/// serializer (captures and SerializeNode must agree byte-for-byte).
class CaptureStream {
 public:
  /// `staged` says some plan put this element in its Cans at Enter.
  void StartElement(const std::string& name,
                    const xml::StaxAttr* attrs_begin,
                    const xml::StaxAttr* attrs_end, int depth,
                    int32_t node_id, bool staged) {
    if (captures_.empty() && !staged) return;
    if (tag_open_) {
      for (Capture& c : captures_) c.buffer += '>';
      tag_open_ = false;
    }
    open_tag_.clear();
    open_tag_ += '<';
    open_tag_ += name;
    for (const xml::StaxAttr* a = attrs_begin; a != attrs_end; ++a) {
      open_tag_ += ' ';
      open_tag_ += a->name;
      open_tag_ += "=\"";
      open_tag_ += XmlEscape(a->value);
      open_tag_ += '"';
    }
    for (Capture& c : captures_) c.buffer += open_tag_;
    if (staged) {
      Capture c;
      c.node_id = node_id;
      c.open_depth = depth;
      c.buffer = open_tag_;
      captures_.push_back(std::move(c));
    }
    appended_ += open_tag_.size() * captures_.size();
    tag_open_ = true;  // captures_ is non-empty here by construction
  }

  void Text(std::string_view raw) {
    if (captures_.empty()) return;
    if (tag_open_) {
      for (Capture& c : captures_) c.buffer += '>';
      tag_open_ = false;
    }
    std::string escaped = XmlEscape(raw);
    for (Capture& c : captures_) c.buffer += escaped;
    appended_ += escaped.size() * captures_.size();
  }

  void EndElement(const std::string& name, int depth) {
    if (tag_open_) {
      // The closing element is empty: finish it as a self-closing tag.
      for (Capture& c : captures_) c.buffer += "/>";
      tag_open_ = false;
    } else {
      for (Capture& c : captures_) {
        c.buffer += "</";
        c.buffer += name;
        c.buffer += '>';
      }
      appended_ += (name.size() + 3) * captures_.size();
    }
    size_t buffered = 0;
    for (const Capture& c : captures_) buffered += c.buffer.size();
    peak_buffered_ = std::max(peak_buffered_, buffered);
    if (!captures_.empty() && captures_.back().open_depth == depth + 1) {
      finished_.emplace(captures_.back().node_id,
                        std::move(captures_.back().buffer));
      captures_.pop_back();
    }
  }

  const std::map<int32_t, std::string>& finished() const { return finished_; }
  size_t peak_buffered() const { return peak_buffered_; }
  /// Monotone total of capture bytes written; drivers charge the delta
  /// since their last guard tick into the request MemoryBudget.
  uint64_t appended() const { return appended_; }

 private:
  std::vector<Capture> captures_;
  std::map<int32_t, std::string> finished_;
  size_t peak_buffered_ = 0;
  uint64_t appended_ = 0;
  bool tag_open_ = false;  // captures have an unclosed start tag pending
  std::string open_tag_;   // scratch; reused across start events
};

/// Per-plan evaluation state: the plan's own engine (runs, guards,
/// frames) plus the skip window and the engine-id → document-node map
/// used to demultiplex shared captures back into per-plan answers.
/// Confinement (DESIGN.md §7): under RunParallel each PlanState is
/// advanced by exactly one worker per chunk; the driver thread reads
/// `staged_events` only after the chunk's join.
struct PlanState {
  PlanState(const automata::Mfa& mfa, const EngineOptions& engine_options)
      : engine(mfa, engine_options) {}

  HypeEngine engine;
  /// Reader depth of the element whose subtree this plan is skipping
  /// (dead-run / TAX pruning), or -1 when the plan is live. While
  /// skipping, the plan receives no events except direct text of the
  /// skipped element itself when `skip_needs_text` is set.
  int skip_depth = -1;
  bool skip_needs_text = false;
  /// (engine id, driver node id) of each element this plan staged as a
  /// candidate, in ascending order (candidates are discovered at Enter).
  /// Plans skip independently, so the two numberings drift apart per
  /// plan; only candidates are recorded, keeping streaming memory
  /// O(candidates) — not O(document) — like the captures themselves.
  std::vector<std::pair<int32_t, int32_t>> candidate_nodes;
  /// Chunk-local indexes of start events this plan staged (parallel
  /// driver only; cleared per chunk, read by the driver after the join).
  std::vector<uint32_t> staged_events;
};

/// One decoded event of a tokenizer chunk.
struct TokEvent {
  xml::StaxEvent kind;
  int depth;
  xml::NameId label = xml::kNoName;  ///< start elements
  int32_t node_id = -1;              ///< start elements
  uint32_t attr_begin = 0;           ///< start elements: [begin, end) into
  uint32_t attr_end = 0;             ///<   TokChunk::attrs
  uint32_t str = 0;  ///< start/end: element name; text: raw text
};

/// A chunk of decoded, interned events — the unit of fork/join work the
/// parallel driver hands to plan groups. Buffers are reused across
/// refills.
struct TokChunk {
  std::vector<TokEvent> events;
  std::vector<xml::StaxAttr> attrs;
  std::vector<std::string> strings;

  void Clear() {
    events.clear();
    attrs.clear();
    strings.clear();
  }
};

/// Decodes up to `max_events` events into `out` (cleared first). Start
/// labels are interned here, on the driver thread — workers only ever
/// read the name table. Returns true once kEndDocument was consumed.
Result<bool> FillChunk(xml::StaxReader& reader, xml::NameTable* names,
                       int32_t* next_node_id, size_t max_events,
                       TokChunk* out) {
  out->Clear();
  while (out->events.size() < max_events) {
    SMOQE_ASSIGN_OR_RETURN(xml::StaxEvent ev, reader.Next());
    switch (ev) {
      case xml::StaxEvent::kStartDocument:
        continue;
      case xml::StaxEvent::kEndDocument:
        return true;
      case xml::StaxEvent::kStartElement: {
        TokEvent e;
        e.kind = ev;
        e.depth = reader.depth();
        e.label = names->Intern(reader.name());
        e.node_id = (*next_node_id)++;
        e.attr_begin = static_cast<uint32_t>(out->attrs.size());
        for (const xml::StaxAttr& a : reader.attrs()) out->attrs.push_back(a);
        e.attr_end = static_cast<uint32_t>(out->attrs.size());
        e.str = static_cast<uint32_t>(out->strings.size());
        out->strings.push_back(reader.name());
        out->events.push_back(e);
        break;
      }
      case xml::StaxEvent::kEndElement: {
        TokEvent e;
        e.kind = ev;
        e.depth = reader.depth();
        e.str = static_cast<uint32_t>(out->strings.size());
        out->strings.push_back(reader.name());
        out->events.push_back(e);
        break;
      }
      case xml::StaxEvent::kCharacters: {
        TokEvent e;
        e.kind = ev;
        e.depth = reader.depth();
        e.str = static_cast<uint32_t>(out->strings.size());
        out->strings.push_back(reader.text());
        out->events.push_back(e);
        break;
      }
    }
  }
  return false;
}

/// Advances one plan through a whole chunk — the same per-plan logic the
/// serial scan applies per event, so the engine sees an identical
/// Enter/Text/Leave sequence.
void AdvancePlanOverChunk(PlanState& ps, const TokChunk& chunk,
                          const xml::NameTable& names) {
  ps.staged_events.clear();
  for (uint32_t i = 0; i < chunk.events.size(); ++i) {
    const TokEvent& ev = chunk.events[i];
    switch (ev.kind) {
      case xml::StaxEvent::kStartElement: {
        if (ps.skip_depth >= 0) {
          ps.engine.mutable_stats()->nodes_pruned += 1;
          break;
        }
        SliceAttrs attrs(chunk.attrs.data() + ev.attr_begin,
                         chunk.attrs.data() + ev.attr_end, names);
        size_t candidates_before = ps.engine.cans().node_count();
        int32_t engine_id = ps.engine.next_id();
        HypeEngine::EnterResult r = ps.engine.Enter(ev.label, attrs);
        if (ps.engine.cans().node_count() > candidates_before) {
          ps.staged_events.push_back(i);
          ps.candidate_nodes.emplace_back(engine_id, ev.node_id);
        }
        if (r.can_skip_subtree) {
          ps.skip_depth = ev.depth;
          ps.skip_needs_text = r.needs_direct_text;
        }
        break;
      }
      case xml::StaxEvent::kCharacters: {
        if (ps.skip_depth >= 0) {
          if (ps.skip_needs_text && ev.depth == ps.skip_depth) {
            ps.engine.Text(chunk.strings[ev.str]);
          }
        } else {
          ps.engine.Text(chunk.strings[ev.str]);
        }
        break;
      }
      case xml::StaxEvent::kEndElement: {
        if (ps.skip_depth >= 0) {
          if (ev.depth == ps.skip_depth - 1) {
            ps.engine.Leave();  // the Leave matching the skip root's Enter
            ps.skip_depth = -1;
          }
        } else {
          ps.engine.Leave();
        }
        break;
      }
      case xml::StaxEvent::kStartDocument:
      case xml::StaxEvent::kEndDocument:
        break;  // never stored in chunks
    }
  }
}

/// Demultiplexes each plan's answer ids into serialized answers via its
/// candidate map and the shared finished-capture table.
Result<std::vector<StaxEvalResult>> AssembleResults(
    std::vector<std::unique_ptr<PlanState>>& states,
    const CaptureStream& cap) {
  std::vector<StaxEvalResult> results(states.size());
  for (size_t k = 0; k < states.size(); ++k) {
    PlanState& ps = *states[k];
    const std::vector<int32_t>& ids = ps.engine.FinishDocument();
    StaxEvalResult& out = results[k];
    for (int32_t id : ids) {
      // Answers are candidates, so the binary search always lands.
      auto cand = std::lower_bound(ps.candidate_nodes.begin(),
                                   ps.candidate_nodes.end(),
                                   std::make_pair(id, INT32_MIN));
      auto it = cand == ps.candidate_nodes.end() || cand->first != id
                    ? cap.finished().end()
                    : cap.finished().find(cand->second);
      if (it == cap.finished().end()) {
        return Status::Internal("plan " + std::to_string(k) + " answer " +
                                std::to_string(id) + " was never captured");
      }
      out.answers.push_back(StaxAnswer{id, it->second});
    }
    out.stats = ps.engine.stats();
    // The capture footprint is shared by the whole batch; every plan
    // reports the pass-wide peak.
    out.stats.buffered_bytes = cap.peak_buffered();
    out.stats.batch_plans = states.size();
  }
  return results;
}

}  // namespace

BatchEvaluator::BatchEvaluator(BatchStaxOptions options)
    : options_(options) {}

int BatchEvaluator::AddPlan(const automata::Mfa* mfa,
                            const EngineOptions& engine) {
  plans_.push_back(Plan{mfa, engine});
  return static_cast<int>(plans_.size()) - 1;
}

Result<std::vector<StaxEvalResult>> BatchEvaluator::Run(
    std::string_view xml) const {
  if (plans_.empty()) return std::vector<StaxEvalResult>{};
  xml::NameTable* names = plans_[0].mfa->names().get();
  for (const Plan& p : plans_) {
    if (p.mfa->names().get() != names) {
      return Status::InvalidArgument(
          "batch plans must share one name table (compile every query "
          "against the same corpus)");
    }
  }

  xml::StaxOptions stax_options;
  stax_options.skip_whitespace_text = options_.skip_whitespace_text;
  xml::StaxReader reader(xml, stax_options);

  std::vector<std::unique_ptr<PlanState>> states;
  states.reserve(plans_.size());
  for (const Plan& p : plans_) {
    states.push_back(std::make_unique<PlanState>(*p.mfa, p.engine));
  }
  size_t live_plans = states.size();  // plans not currently skipping

  CaptureStream cap;
  int32_t next_node_id = 0;
  GuardTicker ticker(options_.guard);
  uint64_t charged_capture = 0;

  while (true) {
    if (ticker.Due()) {
      uint64_t bytes = cap.appended() - charged_capture;
      charged_capture = cap.appended();
      for (auto& ps : states) bytes += ps->engine.TakeAllocBytes();
      options_.guard->ChargeBytes(bytes);
      SMOQE_RETURN_IF_ERROR(ticker.Now());
    }
    SMOQE_ASSIGN_OR_RETURN(xml::StaxEvent ev, reader.Next());
    const int depth = reader.depth();

    switch (ev) {
      case xml::StaxEvent::kStartDocument:
        continue;
      case xml::StaxEvent::kStartElement: {
        const int32_t node_id = next_node_id++;
        bool stage_capture = false;
        if (live_plans > 0) {
          // Shared per-event work: one intern, one attribute view.
          xml::NameId label = names->Intern(reader.name());
          StaxAttrs attrs(reader.attrs(), *names);
          for (auto& ps : states) {
            if (ps->skip_depth >= 0) {
              ps->engine.mutable_stats()->nodes_pruned += 1;
              continue;
            }
            size_t candidates_before = ps->engine.cans().node_count();
            int32_t engine_id = ps->engine.next_id();
            HypeEngine::EnterResult r = ps->engine.Enter(label, attrs);
            if (ps->engine.cans().node_count() > candidates_before) {
              stage_capture = true;
              ps->candidate_nodes.emplace_back(engine_id, node_id);
            }
            if (r.can_skip_subtree) {
              ps->skip_depth = depth;
              ps->skip_needs_text = r.needs_direct_text;
              --live_plans;
            }
          }
        } else {
          for (auto& ps : states) {
            ps->engine.mutable_stats()->nodes_pruned += 1;
          }
        }
        cap.StartElement(reader.name(), reader.attrs().data(),
                         reader.attrs().data() + reader.attrs().size(), depth,
                         node_id, stage_capture);
        break;
      }
      case xml::StaxEvent::kCharacters: {
        for (auto& ps : states) {
          if (ps->skip_depth >= 0) {
            if (ps->skip_needs_text && depth == ps->skip_depth) {
              ps->engine.Text(reader.text());
            }
          } else {
            ps->engine.Text(reader.text());
          }
        }
        cap.Text(reader.text());
        break;
      }
      case xml::StaxEvent::kEndElement: {
        cap.EndElement(reader.name(), depth);
        for (auto& ps : states) {
          if (ps->skip_depth >= 0) {
            if (depth == ps->skip_depth - 1) {
              ps->engine.Leave();  // the Leave matching the skip root's Enter
              ps->skip_depth = -1;
              ++live_plans;
            }
          } else {
            ps->engine.Leave();
          }
        }
        break;
      }
      case xml::StaxEvent::kEndDocument:
        SMOQE_RETURN_IF_ERROR(ticker.Now());
        return AssembleResults(states, cap);
    }
  }
}

Result<std::vector<StaxEvalResult>> BatchEvaluator::RunParallel(
    std::string_view xml, const BatchParallelOptions& par) const {
  ThreadPool& pool = par.pool != nullptr ? *par.pool : ThreadPool::Shared();
  // Workers advance plans while the caller tokenizes, so parallelism
  // needs at least one worker and two plans to group.
  const size_t workers = static_cast<size_t>(pool.thread_count()) - 1;
  if (workers == 0 || plans_.size() < 2) return Run(xml);

  xml::NameTable* names = plans_[0].mfa->names().get();
  for (const Plan& p : plans_) {
    if (p.mfa->names().get() != names) {
      return Status::InvalidArgument(
          "batch plans must share one name table (compile every query "
          "against the same corpus)");
    }
  }

  std::vector<std::unique_ptr<PlanState>> states;
  states.reserve(plans_.size());
  for (const Plan& p : plans_) {
    states.push_back(std::make_unique<PlanState>(*p.mfa, p.engine));
  }

  // Contiguous plan stripes, one per worker task.
  const size_t groups = std::min(workers, states.size());
  auto group_range = [&](size_t g) {
    const size_t per = states.size() / groups;
    const size_t extra = states.size() % groups;
    const size_t begin = g * per + std::min(g, extra);
    return std::make_pair(begin, begin + per + (g < extra ? 1 : 0));
  };

  xml::StaxOptions stax_options;
  stax_options.skip_whitespace_text = options_.skip_whitespace_text;
  xml::StaxReader reader(xml, stax_options);

  const size_t chunk_events = par.chunk_events == 0 ? 4096 : par.chunk_events;
  TokChunk cur, next;
  int32_t next_node_id = 0;
  SMOQE_ASSIGN_OR_RETURN(
      bool eof, FillChunk(reader, names, &next_node_id, chunk_events, &cur));

  CaptureStream cap;
  std::vector<uint8_t> staged;
  uint64_t charged_capture = 0;
  while (!cur.events.empty()) {
    const auto chunk_t0 = par.chunk_ns != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point();
    // Fork: each group advances its plans through `cur`…
    Latch join(groups);
    for (size_t g = 0; g < groups; ++g) {
      pool.Submit([&, g] {
        auto [begin, end] = group_range(g);
        for (size_t k = begin; k < end; ++k) {
          AdvancePlanOverChunk(*states[k], cur, *names);
        }
        join.CountDown();
      });
    }
    // …while the caller tokenizes the next chunk behind the same reader.
    Status tok_status = Status::OK();
    if (!eof) {
      auto r = FillChunk(reader, names, &next_node_id, chunk_events, &next);
      if (r.ok()) {
        eof = *r;
      } else {
        tok_status = r.status();
      }
    } else {
      next.Clear();
    }
    // Help-while-waiting: on a saturated pool (nested batches via
    // QueryBatchMulti) the chunk tasks may be queued behind workers that
    // are themselves waiting on their own chunks — the driver claims
    // them itself rather than deadlock.
    pool.HelpWhileWaiting(join);
    if (!tok_status.ok()) return tok_status;

    // Join: merge the groups' staging reports, then replay the shared
    // capture stream for this chunk on the driver thread.
    staged.assign(cur.events.size(), 0);
    for (auto& ps : states) {
      for (uint32_t i : ps->staged_events) staged[i] = 1;
    }
    for (uint32_t i = 0; i < cur.events.size(); ++i) {
      const TokEvent& ev = cur.events[i];
      switch (ev.kind) {
        case xml::StaxEvent::kStartElement:
          cap.StartElement(cur.strings[ev.str],
                           cur.attrs.data() + ev.attr_begin,
                           cur.attrs.data() + ev.attr_end, ev.depth,
                           ev.node_id, staged[i] != 0);
          break;
        case xml::StaxEvent::kCharacters:
          cap.Text(cur.strings[ev.str]);
          break;
        case xml::StaxEvent::kEndElement:
          cap.EndElement(cur.strings[ev.str], ev.depth);
          break;
        case xml::StaxEvent::kStartDocument:
        case xml::StaxEvent::kEndDocument:
          break;
      }
    }
    if (par.chunk_ns != nullptr) {
      par.chunk_ns->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - chunk_t0)
              .count()));
    }
    // Per-chunk guard tick on the driver thread — the workers have
    // joined, so the engines' allocation counters are safe to drain. A
    // chunk bounds deadline-detection latency to a few thousand events.
    if (options_.guard != nullptr) {
      uint64_t bytes = cap.appended() - charged_capture;
      charged_capture = cap.appended();
      for (auto& ps : states) bytes += ps->engine.TakeAllocBytes();
      options_.guard->ChargeBytes(bytes);
      SMOQE_RETURN_IF_ERROR(options_.guard->Check());
    }
    std::swap(cur, next);
  }

  // Final Cans selection per plan is independent — fan it out too.
  pool.ParallelFor(states.size(),
                   [&](size_t k) { states[k]->engine.FinishDocument(); });
  return AssembleResults(states, cap);
}

EvalStats BatchEvaluator::AggregateStats(
    const std::vector<StaxEvalResult>& results) {
  EvalStats total;
  for (const StaxEvalResult& r : results) total.MergeFrom(r.stats);
  return total;
}

Result<std::vector<StaxEvalResult>> EvalHypeStaxBatch(
    const std::vector<const automata::Mfa*>& plans, std::string_view xml,
    const BatchStaxOptions& options, const EngineOptions& engine) {
  BatchEvaluator batch(options);
  for (const automata::Mfa* mfa : plans) batch.AddPlan(mfa, engine);
  return batch.Run(xml);
}

}  // namespace smoqe::eval
