#include "src/eval/batch.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>

#include "src/common/strings.h"
#include "src/eval/engine.h"
#include "src/xml/stax.h"

namespace smoqe::eval {

namespace {

class StaxAttrs : public AttrProvider {
 public:
  StaxAttrs(const std::vector<xml::StaxAttr>& attrs,
            const xml::NameTable& names)
      : attrs_(attrs), names_(names) {}

  const char* Find(xml::NameId name) const override {
    const std::string& want = names_.NameOf(name);
    for (const xml::StaxAttr& a : attrs_) {
      if (a.name == want) return a.value.c_str();
    }
    return nullptr;
  }

 private:
  const std::vector<xml::StaxAttr>& attrs_;
  const xml::NameTable& names_;
};

/// An in-flight subtree capture, keyed by the driver's document pre-order
/// node id. One capture per staged element regardless of how many plans
/// staged it — the serialized bytes are demultiplexed at FinishDocument.
struct Capture {
  int32_t node_id;
  int open_depth;  ///< reader depth at which the capture started
  std::string buffer;
};

// Appends "<name a="v"" without the closing '>', which is emitted lazily
// so empty elements serialize as "<name/>" exactly like the DOM
// serializer (captures and SerializeNode must agree byte-for-byte).
void AppendOpenTag(const xml::StaxReader& reader, std::string* out) {
  *out += '<';
  *out += reader.name();
  for (const xml::StaxAttr& a : reader.attrs()) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    *out += XmlEscape(a.value);
    *out += '"';
  }
}

/// Per-plan evaluation state: the plan's own engine (runs, guards,
/// frames) plus the skip window and the engine-id → document-node map
/// used to demultiplex shared captures back into per-plan answers.
struct PlanState {
  PlanState(const automata::Mfa& mfa, const EngineOptions& engine_options)
      : engine(mfa, engine_options) {}

  HypeEngine engine;
  /// Reader depth of the element whose subtree this plan is skipping
  /// (dead-run / TAX pruning), or -1 when the plan is live. While
  /// skipping, the plan receives no events except direct text of the
  /// skipped element itself when `skip_needs_text` is set.
  int skip_depth = -1;
  bool skip_needs_text = false;
  /// (engine id, driver node id) of each element this plan staged as a
  /// candidate, in ascending order (candidates are discovered at Enter).
  /// Plans skip independently, so the two numberings drift apart per
  /// plan; only candidates are recorded, keeping streaming memory
  /// O(candidates) — not O(document) — like the captures themselves.
  std::vector<std::pair<int32_t, int32_t>> candidate_nodes;
};

}  // namespace

BatchEvaluator::BatchEvaluator(BatchStaxOptions options)
    : options_(options) {}

int BatchEvaluator::AddPlan(const automata::Mfa* mfa,
                            const EngineOptions& engine) {
  plans_.push_back(Plan{mfa, engine});
  return static_cast<int>(plans_.size()) - 1;
}

Result<std::vector<StaxEvalResult>> BatchEvaluator::Run(
    std::string_view xml) const {
  if (plans_.empty()) return std::vector<StaxEvalResult>{};
  xml::NameTable* names = plans_[0].mfa->names().get();
  for (const Plan& p : plans_) {
    if (p.mfa->names().get() != names) {
      return Status::InvalidArgument(
          "batch plans must share one name table (compile every query "
          "against the same corpus)");
    }
  }

  xml::StaxOptions stax_options;
  stax_options.skip_whitespace_text = options_.skip_whitespace_text;
  xml::StaxReader reader(xml, stax_options);

  std::vector<std::unique_ptr<PlanState>> states;
  states.reserve(plans_.size());
  for (const Plan& p : plans_) {
    states.push_back(std::make_unique<PlanState>(*p.mfa, p.engine));
  }
  size_t live_plans = states.size();  // plans not currently skipping

  std::vector<Capture> captures;
  std::map<int32_t, std::string> finished_captures;
  size_t peak_buffered = 0;
  bool tag_open = false;  // captures have an unclosed start tag pending
  int32_t next_node_id = 0;

  while (true) {
    SMOQE_ASSIGN_OR_RETURN(xml::StaxEvent ev, reader.Next());
    const int depth = reader.depth();

    switch (ev) {
      case xml::StaxEvent::kStartDocument:
        continue;
      case xml::StaxEvent::kStartElement: {
        const int32_t node_id = next_node_id++;
        bool stage_capture = false;
        if (live_plans > 0) {
          // Shared per-event work: one intern, one attribute view.
          xml::NameId label = names->Intern(reader.name());
          StaxAttrs attrs(reader.attrs(), *names);
          for (auto& ps : states) {
            if (ps->skip_depth >= 0) {
              ps->engine.mutable_stats()->nodes_pruned += 1;
              continue;
            }
            size_t candidates_before = ps->engine.cans().node_count();
            int32_t engine_id = ps->engine.next_id();
            HypeEngine::EnterResult r = ps->engine.Enter(label, attrs);
            if (ps->engine.cans().node_count() > candidates_before) {
              stage_capture = true;
              ps->candidate_nodes.emplace_back(engine_id, node_id);
            }
            if (r.can_skip_subtree) {
              ps->skip_depth = depth;
              ps->skip_needs_text = r.needs_direct_text;
              --live_plans;
            }
          }
        } else {
          for (auto& ps : states) {
            ps->engine.mutable_stats()->nodes_pruned += 1;
          }
        }
        // Close the enclosing element's pending start tag, serialize our
        // start tag into surrounding captures, then maybe start our own.
        if (tag_open) {
          for (Capture& c : captures) c.buffer += '>';
          tag_open = false;
        }
        for (Capture& c : captures) AppendOpenTag(reader, &c.buffer);
        if (stage_capture) {
          Capture c;
          c.node_id = node_id;
          c.open_depth = depth;
          AppendOpenTag(reader, &c.buffer);
          captures.push_back(std::move(c));
        }
        if (!captures.empty()) tag_open = true;
        break;
      }
      case xml::StaxEvent::kCharacters: {
        for (auto& ps : states) {
          if (ps->skip_depth >= 0) {
            if (ps->skip_needs_text && depth == ps->skip_depth) {
              ps->engine.Text(reader.text());
            }
          } else {
            ps->engine.Text(reader.text());
          }
        }
        if (!captures.empty()) {
          if (tag_open) {
            for (Capture& c : captures) c.buffer += '>';
            tag_open = false;
          }
          std::string escaped = XmlEscape(reader.text());
          for (Capture& c : captures) c.buffer += escaped;
        }
        break;
      }
      case xml::StaxEvent::kEndElement: {
        if (tag_open) {
          // The closing element is empty: finish it as a self-closing tag.
          for (Capture& c : captures) c.buffer += "/>";
          tag_open = false;
        } else {
          for (Capture& c : captures) {
            c.buffer += "</";
            c.buffer += reader.name();
            c.buffer += '>';
          }
        }
        size_t buffered = 0;
        for (const Capture& c : captures) buffered += c.buffer.size();
        peak_buffered = std::max(peak_buffered, buffered);
        if (!captures.empty() && captures.back().open_depth == depth + 1) {
          finished_captures.emplace(captures.back().node_id,
                                    std::move(captures.back().buffer));
          captures.pop_back();
        }
        for (auto& ps : states) {
          if (ps->skip_depth >= 0) {
            if (depth == ps->skip_depth - 1) {
              ps->engine.Leave();  // the Leave matching the skip root's Enter
              ps->skip_depth = -1;
              ++live_plans;
            }
          } else {
            ps->engine.Leave();
          }
        }
        break;
      }
      case xml::StaxEvent::kEndDocument: {
        std::vector<StaxEvalResult> results(states.size());
        for (size_t k = 0; k < states.size(); ++k) {
          PlanState& ps = *states[k];
          const std::vector<int32_t>& ids = ps.engine.FinishDocument();
          StaxEvalResult& out = results[k];
          for (int32_t id : ids) {
            // Answers are candidates, so the binary search always lands.
            auto cand = std::lower_bound(
                ps.candidate_nodes.begin(), ps.candidate_nodes.end(),
                std::make_pair(id, INT32_MIN));
            auto it = cand == ps.candidate_nodes.end() || cand->first != id
                          ? finished_captures.end()
                          : finished_captures.find(cand->second);
            if (it == finished_captures.end()) {
              return Status::Internal("plan " + std::to_string(k) +
                                      " answer " + std::to_string(id) +
                                      " was never captured");
            }
            out.answers.push_back(StaxAnswer{id, it->second});
          }
          out.stats = ps.engine.stats();
          // The capture footprint is shared by the whole batch; every
          // plan reports the pass-wide peak.
          out.stats.buffered_bytes = peak_buffered;
          out.stats.batch_plans = states.size();
        }
        return results;
      }
    }
  }
}

Result<std::vector<StaxEvalResult>> EvalHypeStaxBatch(
    const std::vector<const automata::Mfa*>& plans, std::string_view xml,
    const BatchStaxOptions& options, const EngineOptions& engine) {
  BatchEvaluator batch(options);
  for (const automata::Mfa* mfa : plans) batch.AddPlan(mfa, engine);
  return batch.Run(xml);
}

}  // namespace smoqe::eval
