#include "src/rxpath/random_query.h"

#include "src/common/rng.h"

namespace smoqe::rxpath {

namespace {

class Generator {
 public:
  Generator(uint64_t seed, const RandomQueryOptions& options)
      : rng_(seed ^ 0xC0FFEE), options_(options) {}

  std::unique_ptr<PathExpr> Path(int depth) {
    // Weighted structural choice; at the depth limit only leaves remain.
    if (depth >= options_.max_depth) return Step(depth);
    switch (rng_.Uniform(10)) {
      case 0: {  // union
        std::vector<std::unique_ptr<PathExpr>> parts;
        parts.push_back(Path(depth + 1));
        parts.push_back(Path(depth + 1));
        return PathExpr::Union(std::move(parts));
      }
      case 1:  // star
        return PathExpr::Star(Path(depth + 1));
      case 2:
      case 3:
      case 4: {  // sequence of 2-3 sub-paths
        std::vector<std::unique_ptr<PathExpr>> parts;
        size_t n = 2 + rng_.Uniform(2);
        for (size_t i = 0; i < n; ++i) parts.push_back(Path(depth + 1));
        return PathExpr::Seq(std::move(parts));
      }
      default:
        return Step(depth);
    }
  }

 private:
  std::unique_ptr<PathExpr> Step(int depth) {
    std::unique_ptr<PathExpr> step;
    uint64_t die = rng_.Uniform(10);
    if (die == 0) {
      step = PathExpr::Wildcard();
    } else if (die == 1) {
      // '//'-style descendant hop.
      step = PathExpr::Seq2(PathExpr::Star(PathExpr::Wildcard()),
                            PathExpr::Label(Label()));
    } else {
      step = PathExpr::Label(Label());
    }
    if (depth < options_.max_depth && rng_.Chance(options_.pred_p)) {
      step = PathExpr::Pred(std::move(step), Qual(depth + 1));
    }
    return step;
  }

  std::unique_ptr<Qualifier> Qual(int depth) {
    if (depth >= options_.max_depth) return LeafQual(depth);
    switch (rng_.Uniform(8)) {
      case 0:
        return Qualifier::And(Qual(depth + 1), Qual(depth + 1));
      case 1:
        return Qualifier::Or(Qual(depth + 1), Qual(depth + 1));
      case 2:
        if (options_.allow_negation) {
          return Qualifier::Not(Qual(depth + 1));
        }
        return LeafQual(depth);
      default:
        return LeafQual(depth);
    }
  }

  std::unique_ptr<Qualifier> LeafQual(int depth) {
    std::unique_ptr<PathExpr> path =
        rng_.Chance(0.2) ? PathExpr::Empty() : Path(depth + 1);
    if (!options_.values.empty() && rng_.Chance(0.5)) {
      return Qualifier::TextEq(std::move(path), Value());
    }
    if (path->kind() == PathExpr::Kind::kEmpty) {
      // A bare '.' qualifier is trivially true; prefer a label step.
      path = PathExpr::Label(Label());
    }
    return Qualifier::Path(std::move(path));
  }

  std::string Label() {
    return options_.labels[rng_.Uniform(options_.labels.size())];
  }
  std::string Value() {
    return options_.values[rng_.Uniform(options_.values.size())];
  }

  Rng rng_;
  const RandomQueryOptions& options_;
};

}  // namespace

std::unique_ptr<PathExpr> RandomQuery(uint64_t seed,
                                      const RandomQueryOptions& options) {
  Generator gen(seed, options);
  return gen.Path(0);
}

}  // namespace smoqe::rxpath
