#ifndef SMOQE_RXPATH_TYPE_CHECK_H_
#define SMOQE_RXPATH_TYPE_CHECK_H_

#include <set>
#include <string>

#include "src/rxpath/ast.h"
#include "src/xml/dtd.h"

namespace smoqe::rxpath {

/// Result of statically typing a path against a DTD.
struct TypeCheckResult {
  /// Element types the path can produce from the given context types.
  std::set<std::string> output_types;
  /// Labels mentioned by the path (selection or qualifiers) that are not
  /// element types of the DTD — typos or schema violations; such steps
  /// can never match on conforming documents.
  std::set<std::string> unknown_labels;
};

/// \brief Infers the output types of a Regular XPath over a DTD's type
/// graph (abstract interpretation of child steps over element types).
///
/// `context_types` is the set of types evaluation may start from; pass
/// `{dtd.root_name()}` with `from_document_node = true` for a whole-query
/// check (the virtual document node precedes the root, so the first step
/// must match the root type).
///
/// Uses: validating user queries against a view schema (SMOQE rejects or
/// warns on queries that cannot match — iSMOQE's query assistance), and
/// checking hand-written view specifications (σ(A,B) must only produce
/// B-typed nodes; see view::ParseViewSpecification).
///
/// Qualifier paths are typed for `unknown_labels` reporting but do not
/// constrain `output_types` (a qualifier can only shrink the result set).
TypeCheckResult TypeCheck(const PathExpr& path, const xml::Dtd& dtd,
                          const std::set<std::string>& context_types,
                          bool from_document_node = false);

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_TYPE_CHECK_H_
