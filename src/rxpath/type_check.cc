#include "src/rxpath/type_check.h"

#include <algorithm>

namespace smoqe::rxpath {

namespace {

/// The virtual document node is modeled as the pseudo-type "".
constexpr char kDocType[] = "";

class Checker {
 public:
  Checker(const xml::Dtd& dtd, TypeCheckResult* out) : dtd_(dtd), out_(out) {}

  std::set<std::string> Walk(const PathExpr& p,
                             const std::set<std::string>& in) {
    switch (p.kind()) {
      case PathExpr::Kind::kEmpty:
        return in;
      case PathExpr::Kind::kLabel: {
        if (dtd_.Find(p.label()) == nullptr) {
          out_->unknown_labels.insert(p.label());
          return {};
        }
        std::set<std::string> out;
        for (const std::string& t : in) {
          for (const std::string& c : ChildTypesOf(t)) {
            if (c == p.label()) out.insert(c);
          }
        }
        return out;
      }
      case PathExpr::Kind::kWildcard: {
        std::set<std::string> out;
        for (const std::string& t : in) {
          for (const std::string& c : ChildTypesOf(t)) out.insert(c);
        }
        return out;
      }
      case PathExpr::Kind::kSeq: {
        std::set<std::string> cur = in;
        for (const auto& part : p.parts()) {
          cur = Walk(*part, cur);
          // Keep walking on empty context so every label is still checked
          // for typos, but the result stays empty.
        }
        return cur;
      }
      case PathExpr::Kind::kUnion: {
        std::set<std::string> out;
        for (const auto& part : p.parts()) {
          std::set<std::string> piece = Walk(*part, in);
          out.insert(piece.begin(), piece.end());
        }
        return out;
      }
      case PathExpr::Kind::kStar: {
        // Fixpoint over reachable types.
        std::set<std::string> all = in;
        std::set<std::string> frontier = in;
        while (!frontier.empty()) {
          std::set<std::string> next = Walk(p.body(), frontier);
          std::set<std::string> fresh;
          for (const std::string& t : next) {
            if (all.insert(t).second) fresh.insert(t);
          }
          frontier = std::move(fresh);
        }
        return all;
      }
      case PathExpr::Kind::kPred: {
        std::set<std::string> base = Walk(*p.parts()[0], in);
        CheckQualifier(p.qual(), base);
        return base;
      }
    }
    return {};
  }

 private:
  std::vector<std::string> ChildTypesOf(const std::string& t) const {
    if (t == kDocType) {
      return dtd_.root_name().empty()
                 ? std::vector<std::string>{}
                 : std::vector<std::string>{dtd_.root_name()};
    }
    return dtd_.ChildTypes(t);
  }

  void CheckQualifier(const Qualifier& q, const std::set<std::string>& anchors) {
    switch (q.kind()) {
      case Qualifier::Kind::kPath:
      case Qualifier::Kind::kTextEq:
      case Qualifier::Kind::kAttr:
        (void)Walk(q.path(), anchors);
        break;
      case Qualifier::Kind::kAnd:
      case Qualifier::Kind::kOr:
        CheckQualifier(q.left(), anchors);
        CheckQualifier(q.right(), anchors);
        break;
      case Qualifier::Kind::kNot:
        CheckQualifier(q.left(), anchors);
        break;
      case Qualifier::Kind::kTrue:
        break;
    }
  }

  const xml::Dtd& dtd_;
  TypeCheckResult* out_;
};

}  // namespace

TypeCheckResult TypeCheck(const PathExpr& path, const xml::Dtd& dtd,
                          const std::set<std::string>& context_types,
                          bool from_document_node) {
  TypeCheckResult result;
  Checker checker(dtd, &result);
  std::set<std::string> in = context_types;
  if (from_document_node) in.insert(kDocType);
  result.output_types = checker.Walk(path, in);
  result.output_types.erase(kDocType);  // the virtual node is not a type
  return result;
}

}  // namespace smoqe::rxpath
