#ifndef SMOQE_RXPATH_RANDOM_QUERY_H_
#define SMOQE_RXPATH_RANDOM_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/rxpath/ast.h"

namespace smoqe::rxpath {

/// Knobs for random query generation.
struct RandomQueryOptions {
  /// Element names steps draw from (usually a schema's types).
  std::vector<std::string> labels;
  /// Text constants for '= value' comparisons (usually the generator
  /// vocabulary, so predicates are satisfiable).
  std::vector<std::string> values;
  /// Maximum AST depth of the generated path.
  int max_depth = 5;
  /// Probability a generated step carries a predicate.
  double pred_p = 0.3;
  /// Probability weights for structural choices (label vs wildcard vs
  /// star vs union …) are fixed internally; this flag additionally allows
  /// `not(…)` in qualifiers (negation stresses resolution ordering).
  bool allow_negation = true;
};

/// \brief Grammar-directed random Regular XPath generator, for fuzz-style
/// differential testing: every engine (naive, HyPE DOM/StAX, two-pass,
/// TAX on/off) must agree on every (random document, random query) pair.
///
/// Deterministic per seed. The same seed/options always yield the same
/// query, so failures reproduce.
std::unique_ptr<PathExpr> RandomQuery(uint64_t seed,
                                      const RandomQueryOptions& options);

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_RANDOM_QUERY_H_
