#ifndef SMOQE_RXPATH_AST_H_
#define SMOQE_RXPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace smoqe::rxpath {

class Qualifier;

/// \brief AST of a Regular XPath path expression.
///
/// Regular XPath (the paper's query language) is XPath's child-axis
/// fragment extended with general Kleene closure:
///
///   p ::= ε | l | * | p/p | p ∪ p | (p)* | p[q]
///
/// `//` is surface syntax desugared by the parser to `(*)*` (any chain of
/// child steps). Steps navigate the child axis over element nodes; text is
/// reached only through qualifiers.
class PathExpr {
 public:
  enum class Kind {
    kEmpty,     ///< ε — stay at the context node ('.')
    kLabel,     ///< one child step matching an element name
    kWildcard,  ///< one child step matching any element
    kSeq,       ///< p1 / p2 / … / pn
    kUnion,     ///< p1 | p2 | … | pn
    kStar,      ///< (p)* — zero or more repetitions
    kPred,      ///< p[q] — keep nodes reached by p that satisfy q
  };

  static std::unique_ptr<PathExpr> Empty();
  static std::unique_ptr<PathExpr> Label(std::string name);
  static std::unique_ptr<PathExpr> Wildcard();
  static std::unique_ptr<PathExpr> Seq(
      std::vector<std::unique_ptr<PathExpr>> parts);
  /// Convenience two-part sequence.
  static std::unique_ptr<PathExpr> Seq2(std::unique_ptr<PathExpr> a,
                                        std::unique_ptr<PathExpr> b);
  static std::unique_ptr<PathExpr> Union(
      std::vector<std::unique_ptr<PathExpr>> parts);
  static std::unique_ptr<PathExpr> Star(std::unique_ptr<PathExpr> body);
  static std::unique_ptr<PathExpr> Pred(std::unique_ptr<PathExpr> path,
                                        std::unique_ptr<Qualifier> qual);

  ~PathExpr();

  Kind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  const std::vector<std::unique_ptr<PathExpr>>& parts() const {
    return parts_;
  }
  const PathExpr& body() const { return *parts_[0]; }  // kStar / kPred
  const Qualifier& qual() const { return *qual_; }     // kPred

  std::unique_ptr<PathExpr> Clone() const;
  bool Equals(const PathExpr& other) const;

  /// Number of AST nodes (query size |Q| in the paper's complexity claims).
  size_t TreeSize() const;

 private:
  explicit PathExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string label_;                               // kLabel
  std::vector<std::unique_ptr<PathExpr>> parts_;    // kSeq/kUnion/kStar/kPred
  std::unique_ptr<Qualifier> qual_;                 // kPred
};

/// \brief AST of a qualifier (the `[…]` predicate language).
///
///   q ::= p | p = 'c' | p/@a | p/@a = 'c' | q and q | q or q | not(q)
///
/// `p = 'c'` is true at node v iff some node reached from v by p has
/// direct text equal to 'c' (`p/text() = 'c'` parses to the same form;
/// with p = ε the test applies to v itself).
class Qualifier {
 public:
  enum class Kind {
    kPath,    ///< ∃ node reached by path
    kTextEq,  ///< ∃ node reached by path whose direct text equals value
    kAttr,    ///< ∃ node reached by path carrying the attribute
              ///< (optionally with the given value)
    kAnd,
    kOr,
    kNot,
    kTrue,    ///< constant true (used by internal constructions)
  };

  static std::unique_ptr<Qualifier> Path(std::unique_ptr<PathExpr> path);
  static std::unique_ptr<Qualifier> TextEq(std::unique_ptr<PathExpr> path,
                                           std::string value);
  static std::unique_ptr<Qualifier> Attr(std::unique_ptr<PathExpr> path,
                                         std::string attr_name);
  static std::unique_ptr<Qualifier> AttrEq(std::unique_ptr<PathExpr> path,
                                           std::string attr_name,
                                           std::string value);
  static std::unique_ptr<Qualifier> And(std::unique_ptr<Qualifier> a,
                                        std::unique_ptr<Qualifier> b);
  static std::unique_ptr<Qualifier> Or(std::unique_ptr<Qualifier> a,
                                       std::unique_ptr<Qualifier> b);
  static std::unique_ptr<Qualifier> Not(std::unique_ptr<Qualifier> a);
  static std::unique_ptr<Qualifier> True();

  ~Qualifier();

  Kind kind() const { return kind_; }
  const PathExpr& path() const { return *path_; }
  bool has_path() const { return path_ != nullptr; }
  const std::string& value() const { return value_; }
  bool has_value() const { return has_value_; }
  const std::string& attr_name() const { return attr_name_; }
  const Qualifier& left() const { return *left_; }
  const Qualifier& right() const { return *right_; }

  std::unique_ptr<Qualifier> Clone() const;
  bool Equals(const Qualifier& other) const;
  size_t TreeSize() const;

 private:
  explicit Qualifier(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::unique_ptr<PathExpr> path_;   // kPath/kTextEq/kAttr
  std::string value_;                // kTextEq / kAttr with value
  bool has_value_ = false;           // kAttr: value comparison present
  std::string attr_name_;            // kAttr
  std::unique_ptr<Qualifier> left_;  // kAnd/kOr/kNot
  std::unique_ptr<Qualifier> right_; // kAnd/kOr
};

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_AST_H_
