#ifndef SMOQE_RXPATH_PRINTER_H_
#define SMOQE_RXPATH_PRINTER_H_

#include <string>

#include "src/rxpath/ast.h"

namespace smoqe::rxpath {

/// Renders a path expression in canonical surface syntax. The output
/// re-parses to a structurally equal AST (round-trip property, tested).
std::string ToString(const PathExpr& path);

/// Renders a qualifier.
std::string ToString(const Qualifier& qual);

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_PRINTER_H_
