#ifndef SMOQE_RXPATH_NAIVE_EVAL_H_
#define SMOQE_RXPATH_NAIVE_EVAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/rxpath/ast.h"
#include "src/xml/dom.h"

namespace smoqe::rxpath {

/// Work counters of the naive evaluator (used by the E2 benchmark to show
/// the cost of per-step node-set materialization).
struct NaiveEvalStats {
  uint64_t node_visits = 0;    ///< child-list scans performed
  uint64_t set_elements = 0;   ///< total size of materialized node sets
  uint64_t qual_evals = 0;     ///< qualifier evaluations (after memo hits)
};

/// \brief Reference Regular XPath evaluator with per-step node-set
/// materialization — the strategy of classic DOM engines such as Xalan.
///
/// Semantics are the specification the optimized engines are tested
/// against: sets of element nodes in document order; `(p)*` by Kleene
/// fixpoint; qualifiers memoized per (qualifier, node).
///
/// Queries start at a *virtual document node* above the root (represented
/// internally as nullptr), so `hospital/...` matches the root element by
/// name. Only element nodes appear in answers.
class NaiveEvaluator {
 public:
  using NodeSet = std::vector<const xml::Node*>;  // sorted by id, unique

  explicit NaiveEvaluator(const xml::Document& doc) : doc_(doc) {}

  /// Evaluates `query` from the virtual document node.
  NodeSet Eval(const PathExpr& query);

  /// Evaluates `query` from the given context nodes.
  NodeSet EvalFrom(const PathExpr& query, NodeSet context);

  /// Evaluates a qualifier at one node (nullptr = virtual document node).
  bool QualifierHolds(const Qualifier& q, const xml::Node* node);

  const NaiveEvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NaiveEvalStats(); }

 private:
  NodeSet EvalPath(const PathExpr& p, const NodeSet& input);
  NodeSet ChildStep(const NodeSet& input, xml::NameId label, bool wildcard);
  void SortUnique(NodeSet* set) const;

  const xml::Document& doc_;
  NaiveEvalStats stats_;
  // Memoized qualifier outcomes, keyed by qualifier identity and node.
  std::unordered_map<const Qualifier*,
                     std::unordered_map<const xml::Node*, bool>>
      qual_memo_;
};

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_NAIVE_EVAL_H_
