#include "src/rxpath/printer.h"

namespace smoqe::rxpath {

namespace {

std::string Quote(const std::string& v) {
  if (v.find('\'') == std::string::npos) return "'" + v + "'";
  return "\"" + v + "\"";
}

// True if `p` prints as a single step token (no parens needed before a
// postfix or inside a sequence).
bool IsAtomic(const PathExpr& p) {
  switch (p.kind()) {
    case PathExpr::Kind::kEmpty:
    case PathExpr::Kind::kLabel:
    case PathExpr::Kind::kWildcard:
    case PathExpr::Kind::kPred:  // prints as step[...]; binds correctly
      return true;
    default:
      return false;
  }
}

std::string PrintPath(const PathExpr& p);

std::string PrintSeqPart(const PathExpr& p) {
  if (p.kind() == PathExpr::Kind::kUnion) return "(" + PrintPath(p) + ")";
  return PrintPath(p);
}

std::string PrintPath(const PathExpr& p) {
  switch (p.kind()) {
    case PathExpr::Kind::kEmpty:
      return ".";
    case PathExpr::Kind::kLabel:
      return p.label();
    case PathExpr::Kind::kWildcard:
      return "*";
    case PathExpr::Kind::kSeq: {
      std::string out;
      for (size_t i = 0; i < p.parts().size(); ++i) {
        if (i > 0) out += "/";
        out += PrintSeqPart(*p.parts()[i]);
      }
      return out;
    }
    case PathExpr::Kind::kUnion: {
      std::string out;
      for (size_t i = 0; i < p.parts().size(); ++i) {
        if (i > 0) out += " | ";
        out += PrintPath(*p.parts()[i]);
      }
      return out;
    }
    case PathExpr::Kind::kStar: {
      const PathExpr& body = p.body();
      if (body.kind() == PathExpr::Kind::kLabel) return body.label() + "*";
      return "(" + PrintPath(body) + ")*";
    }
    case PathExpr::Kind::kPred: {
      const PathExpr& base = *p.parts()[0];
      std::string head =
          IsAtomic(base) ? PrintPath(base) : "(" + PrintPath(base) + ")";
      return head + "[" + ToString(p.qual()) + "]";
    }
  }
  return "?";
}

std::string PrintQual(const Qualifier& q);

// Parenthesization preserves the exact tree shape: the parser is
// left-associative, so a right operand of the same kind needs parentheses,
// and 'or' under 'and' always does.
std::string PrintBoolOperand(const Qualifier& q, Qualifier::Kind parent,
                             bool is_right) {
  bool needs_parens = false;
  if (parent == Qualifier::Kind::kAnd) {
    needs_parens = q.kind() == Qualifier::Kind::kOr ||
                   (is_right && q.kind() == Qualifier::Kind::kAnd);
  } else {  // kOr
    needs_parens = is_right && q.kind() == Qualifier::Kind::kOr;
  }
  std::string s = PrintQual(q);
  return needs_parens ? "(" + s + ")" : s;
}

std::string PrintQual(const Qualifier& q) {
  switch (q.kind()) {
    case Qualifier::Kind::kPath:
      return PrintPath(q.path());
    case Qualifier::Kind::kTextEq: {
      if (q.path().kind() == PathExpr::Kind::kEmpty) {
        return "text() = " + Quote(q.value());
      }
      return PrintPath(q.path()) + " = " + Quote(q.value());
    }
    case Qualifier::Kind::kAttr: {
      std::string head;
      if (q.path().kind() == PathExpr::Kind::kEmpty) {
        head = "@" + q.attr_name();
      } else {
        head = PrintPath(q.path()) + "/@" + q.attr_name();
      }
      if (q.has_value()) head += " = " + Quote(q.value());
      return head;
    }
    case Qualifier::Kind::kAnd:
      return PrintBoolOperand(q.left(), Qualifier::Kind::kAnd, false) +
             " and " +
             PrintBoolOperand(q.right(), Qualifier::Kind::kAnd, true);
    case Qualifier::Kind::kOr:
      return PrintBoolOperand(q.left(), Qualifier::Kind::kOr, false) +
             " or " +
             PrintBoolOperand(q.right(), Qualifier::Kind::kOr, true);
    case Qualifier::Kind::kNot:
      return "not(" + PrintQual(q.left()) + ")";
    case Qualifier::Kind::kTrue:
      return "true()";
  }
  return "?";
}

}  // namespace

std::string ToString(const PathExpr& path) { return PrintPath(path); }

std::string ToString(const Qualifier& qual) { return PrintQual(qual); }

}  // namespace smoqe::rxpath
