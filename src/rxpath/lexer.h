#ifndef SMOQE_RXPATH_LEXER_H_
#define SMOQE_RXPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smoqe::rxpath {

/// Token kinds of the Regular XPath surface syntax.
enum class TokKind {
  kName,         ///< element / attribute name (also 'and'/'or'/'not' words)
  kString,       ///< quoted literal; text() holds the unquoted value
  kSlash,        ///< /
  kDoubleSlash,  ///< //
  kLParen,       ///< (
  kRParen,       ///< )
  kLBracket,     ///< [
  kRBracket,     ///< ]
  kPipe,         ///< | (union)
  kStar,         ///< * (wildcard step or postfix Kleene star)
  kDot,          ///< . (ε)
  kAt,           ///< @
  kEq,           ///< =
  kNeq,          ///< !=
  kTextFn,       ///< text()
  kTrueFn,       ///< true()
  kEnd,          ///< end of input
};

/// One token with its source offset (for error messages).
struct Token {
  TokKind kind;
  std::string text;  // kName / kString payloads
  size_t pos = 0;
};

/// Tokenizes a Regular XPath expression. Fails on characters outside the
/// grammar or unterminated string literals.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Name of a token kind for diagnostics ("'['", "name", …).
std::string TokKindName(TokKind kind);

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_LEXER_H_
