#include "src/rxpath/ast.h"

namespace smoqe::rxpath {

PathExpr::~PathExpr() = default;
Qualifier::~Qualifier() = default;

std::unique_ptr<PathExpr> PathExpr::Empty() {
  return std::unique_ptr<PathExpr>(new PathExpr(Kind::kEmpty));
}

std::unique_ptr<PathExpr> PathExpr::Label(std::string name) {
  auto p = std::unique_ptr<PathExpr>(new PathExpr(Kind::kLabel));
  p->label_ = std::move(name);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Wildcard() {
  return std::unique_ptr<PathExpr>(new PathExpr(Kind::kWildcard));
}

std::unique_ptr<PathExpr> PathExpr::Seq(
    std::vector<std::unique_ptr<PathExpr>> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  auto p = std::unique_ptr<PathExpr>(new PathExpr(Kind::kSeq));
  // Flatten nested sequences for a canonical shape.
  for (auto& part : parts) {
    if (part->kind_ == Kind::kSeq) {
      for (auto& inner : part->parts_) p->parts_.push_back(std::move(inner));
    } else if (part->kind_ == Kind::kEmpty) {
      continue;  // ε is the identity of '/'
    } else {
      p->parts_.push_back(std::move(part));
    }
  }
  if (p->parts_.empty()) return Empty();
  if (p->parts_.size() == 1) return std::move(p->parts_[0]);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Seq2(std::unique_ptr<PathExpr> a,
                                         std::unique_ptr<PathExpr> b) {
  std::vector<std::unique_ptr<PathExpr>> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return Seq(std::move(v));
}

std::unique_ptr<PathExpr> PathExpr::Union(
    std::vector<std::unique_ptr<PathExpr>> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  auto p = std::unique_ptr<PathExpr>(new PathExpr(Kind::kUnion));
  for (auto& part : parts) {
    if (part->kind_ == Kind::kUnion) {
      for (auto& inner : part->parts_) p->parts_.push_back(std::move(inner));
    } else {
      p->parts_.push_back(std::move(part));
    }
  }
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Star(std::unique_ptr<PathExpr> body) {
  if (body->kind_ == Kind::kStar) return body;      // (p*)* = p*
  if (body->kind_ == Kind::kEmpty) return body;     // (ε)* = ε
  auto p = std::unique_ptr<PathExpr>(new PathExpr(Kind::kStar));
  p->parts_.push_back(std::move(body));
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Pred(std::unique_ptr<PathExpr> path,
                                         std::unique_ptr<Qualifier> qual) {
  auto p = std::unique_ptr<PathExpr>(new PathExpr(Kind::kPred));
  p->parts_.push_back(std::move(path));
  p->qual_ = std::move(qual);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Clone() const {
  switch (kind_) {
    case Kind::kEmpty:
      return Empty();
    case Kind::kLabel:
      return Label(label_);
    case Kind::kWildcard:
      return Wildcard();
    case Kind::kStar:
      return Star(parts_[0]->Clone());
    case Kind::kPred:
      return Pred(parts_[0]->Clone(), qual_->Clone());
    case Kind::kSeq:
    case Kind::kUnion: {
      std::vector<std::unique_ptr<PathExpr>> parts;
      parts.reserve(parts_.size());
      for (const auto& p : parts_) parts.push_back(p->Clone());
      return kind_ == Kind::kSeq ? Seq(std::move(parts))
                                 : Union(std::move(parts));
    }
  }
  return Empty();
}

bool PathExpr::Equals(const PathExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kEmpty:
    case Kind::kWildcard:
      return true;
    case Kind::kLabel:
      return label_ == other.label_;
    case Kind::kPred:
      return parts_[0]->Equals(*other.parts_[0]) &&
             qual_->Equals(*other.qual_);
    default: {
      if (parts_.size() != other.parts_.size()) return false;
      for (size_t i = 0; i < parts_.size(); ++i) {
        if (!parts_[i]->Equals(*other.parts_[i])) return false;
      }
      return true;
    }
  }
}

size_t PathExpr::TreeSize() const {
  size_t n = 1;
  for (const auto& p : parts_) n += p->TreeSize();
  if (qual_) n += qual_->TreeSize();
  return n;
}

std::unique_ptr<Qualifier> Qualifier::Path(std::unique_ptr<PathExpr> path) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kPath));
  q->path_ = std::move(path);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::TextEq(std::unique_ptr<PathExpr> path,
                                             std::string value) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kTextEq));
  q->path_ = std::move(path);
  q->value_ = std::move(value);
  q->has_value_ = true;
  return q;
}

std::unique_ptr<Qualifier> Qualifier::Attr(std::unique_ptr<PathExpr> path,
                                           std::string attr_name) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kAttr));
  q->path_ = std::move(path);
  q->attr_name_ = std::move(attr_name);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::AttrEq(std::unique_ptr<PathExpr> path,
                                             std::string attr_name,
                                             std::string value) {
  auto q = Attr(std::move(path), std::move(attr_name));
  q->value_ = std::move(value);
  q->has_value_ = true;
  return q;
}

std::unique_ptr<Qualifier> Qualifier::And(std::unique_ptr<Qualifier> a,
                                          std::unique_ptr<Qualifier> b) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kAnd));
  q->left_ = std::move(a);
  q->right_ = std::move(b);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::Or(std::unique_ptr<Qualifier> a,
                                         std::unique_ptr<Qualifier> b) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kOr));
  q->left_ = std::move(a);
  q->right_ = std::move(b);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::Not(std::unique_ptr<Qualifier> a) {
  auto q = std::unique_ptr<Qualifier>(new Qualifier(Kind::kNot));
  q->left_ = std::move(a);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::True() {
  return std::unique_ptr<Qualifier>(new Qualifier(Kind::kTrue));
}

std::unique_ptr<Qualifier> Qualifier::Clone() const {
  switch (kind_) {
    case Kind::kPath:
      return Path(path_->Clone());
    case Kind::kTextEq:
      return TextEq(path_->Clone(), value_);
    case Kind::kAttr: {
      if (has_value_) return AttrEq(path_->Clone(), attr_name_, value_);
      return Attr(path_->Clone(), attr_name_);
    }
    case Kind::kAnd:
      return And(left_->Clone(), right_->Clone());
    case Kind::kOr:
      return Or(left_->Clone(), right_->Clone());
    case Kind::kNot:
      return Not(left_->Clone());
    case Kind::kTrue:
      return True();
  }
  return True();
}

bool Qualifier::Equals(const Qualifier& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kPath:
      return path_->Equals(*other.path_);
    case Kind::kTextEq:
      return value_ == other.value_ && path_->Equals(*other.path_);
    case Kind::kAttr:
      return attr_name_ == other.attr_name_ && has_value_ == other.has_value_ &&
             value_ == other.value_ && path_->Equals(*other.path_);
    case Kind::kAnd:
    case Kind::kOr:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case Kind::kNot:
      return left_->Equals(*other.left_);
    case Kind::kTrue:
      return true;
  }
  return false;
}

size_t Qualifier::TreeSize() const {
  size_t n = 1;
  if (path_) n += path_->TreeSize();
  if (left_) n += left_->TreeSize();
  if (right_) n += right_->TreeSize();
  return n;
}

}  // namespace smoqe::rxpath
