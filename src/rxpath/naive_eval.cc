#include "src/rxpath/naive_eval.h"

#include <algorithm>
#include <unordered_set>

namespace smoqe::rxpath {

namespace {

// Virtual document node sorts before everything else. Document order is
// the `order` rank (== node_id until the document is updated).
int32_t IdOf(const xml::Node* n) { return n == nullptr ? -1 : n->order; }

}  // namespace

void NaiveEvaluator::SortUnique(NodeSet* set) const {
  std::sort(set->begin(), set->end(),
            [](const xml::Node* a, const xml::Node* b) {
              return IdOf(a) < IdOf(b);
            });
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

NaiveEvaluator::NodeSet NaiveEvaluator::Eval(const PathExpr& query) {
  // The memo is keyed by qualifier AST addresses, which are only stable for
  // the duration of one query's evaluation — a freed AST could be
  // reallocated at the same address by the next query.
  qual_memo_.clear();
  NodeSet context = {nullptr};
  NodeSet out = EvalPath(query, context);
  // Only element nodes are answers; drop the virtual document node if the
  // query can select it (e.g. the query ".").
  out.erase(std::remove(out.begin(), out.end(), nullptr), out.end());
  return out;
}

NaiveEvaluator::NodeSet NaiveEvaluator::EvalFrom(const PathExpr& query,
                                                 NodeSet context) {
  qual_memo_.clear();
  SortUnique(&context);
  return EvalPath(query, context);
}

NaiveEvaluator::NodeSet NaiveEvaluator::ChildStep(const NodeSet& input,
                                                  xml::NameId label,
                                                  bool wildcard) {
  NodeSet out;
  for (const xml::Node* ctx : input) {
    ++stats_.node_visits;
    if (ctx == nullptr) {
      const xml::Node* root = doc_.root();
      if (wildcard || root->label == label) out.push_back(root);
      continue;
    }
    for (const xml::Node* c = ctx->first_child; c != nullptr;
         c = c->next_sibling) {
      if (!c->is_element()) continue;
      if (wildcard || c->label == label) out.push_back(c);
    }
  }
  // Children of distinct sorted contexts are distinct and produced in
  // document order only when contexts do not nest; sort to be safe.
  SortUnique(&out);
  stats_.set_elements += out.size();
  return out;
}

NaiveEvaluator::NodeSet NaiveEvaluator::EvalPath(const PathExpr& p,
                                                 const NodeSet& input) {
  switch (p.kind()) {
    case PathExpr::Kind::kEmpty:
      return input;
    case PathExpr::Kind::kLabel: {
      xml::NameId id = doc_.names()->Lookup(p.label());
      if (id == xml::kNoName) return {};  // label absent from the document
      return ChildStep(input, id, /*wildcard=*/false);
    }
    case PathExpr::Kind::kWildcard:
      return ChildStep(input, xml::kNoName, /*wildcard=*/true);
    case PathExpr::Kind::kSeq: {
      NodeSet cur = input;
      for (const auto& part : p.parts()) {
        cur = EvalPath(*part, cur);
        if (cur.empty()) break;
      }
      return cur;
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out;
      for (const auto& part : p.parts()) {
        NodeSet piece = EvalPath(*part, input);
        out.insert(out.end(), piece.begin(), piece.end());
      }
      SortUnique(&out);
      return out;
    }
    case PathExpr::Kind::kStar: {
      // Kleene fixpoint: closure of `input` under the body path.
      NodeSet result = input;
      std::unordered_set<const xml::Node*> seen(input.begin(), input.end());
      NodeSet frontier = input;
      while (!frontier.empty()) {
        NodeSet next = EvalPath(p.body(), frontier);
        NodeSet fresh;
        for (const xml::Node* n : next) {
          if (seen.insert(n).second) fresh.push_back(n);
        }
        result.insert(result.end(), fresh.begin(), fresh.end());
        frontier = std::move(fresh);
      }
      SortUnique(&result);
      return result;
    }
    case PathExpr::Kind::kPred: {
      NodeSet base = EvalPath(*p.parts()[0], input);
      NodeSet out;
      for (const xml::Node* n : base) {
        if (QualifierHolds(p.qual(), n)) out.push_back(n);
      }
      return out;
    }
  }
  return {};
}

bool NaiveEvaluator::QualifierHolds(const Qualifier& q, const xml::Node* node) {
  auto& memo = qual_memo_[&q];
  auto it = memo.find(node);
  if (it != memo.end()) return it->second;
  ++stats_.qual_evals;

  bool result = false;
  switch (q.kind()) {
    case Qualifier::Kind::kPath: {
      NodeSet reached = EvalPath(q.path(), {node});
      result = !reached.empty();
      break;
    }
    case Qualifier::Kind::kTextEq: {
      NodeSet reached = EvalPath(q.path(), {node});
      for (const xml::Node* n : reached) {
        if (n == nullptr) continue;  // virtual document node has no text
        if (xml::Document::DirectText(n) == q.value()) {
          result = true;
          break;
        }
      }
      break;
    }
    case Qualifier::Kind::kAttr: {
      xml::NameId attr = doc_.names()->Lookup(q.attr_name());
      if (attr == xml::kNoName) {
        result = false;
        break;
      }
      NodeSet reached = EvalPath(q.path(), {node});
      for (const xml::Node* n : reached) {
        if (n == nullptr) continue;
        const char* v = n->FindAttr(attr);
        if (v == nullptr) continue;
        if (!q.has_value() || q.value() == v) {
          result = true;
          break;
        }
      }
      break;
    }
    case Qualifier::Kind::kAnd:
      result = QualifierHolds(q.left(), node) && QualifierHolds(q.right(), node);
      break;
    case Qualifier::Kind::kOr:
      result = QualifierHolds(q.left(), node) || QualifierHolds(q.right(), node);
      break;
    case Qualifier::Kind::kNot:
      result = !QualifierHolds(q.left(), node);
      break;
    case Qualifier::Kind::kTrue:
      result = true;
      break;
  }
  qual_memo_[&q][node] = result;
  return result;
}

}  // namespace smoqe::rxpath
