#include "src/rxpath/parser.h"

#include <vector>

#include "src/rxpath/lexer.h"

namespace smoqe::rxpath {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<PathExpr>> ParseFullQuery() {
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> p, ParsePath());
    SMOQE_RETURN_IF_ERROR(ExpectEnd());
    return p;
  }

  Result<std::unique_ptr<Qualifier>> ParseFullQualifier() {
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q, ParseQual());
    SMOQE_RETURN_IF_ERROR(ExpectEnd());
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ConsumeIf(TokKind kind) {
    if (Cur().kind != kind) return false;
    Advance();
    return true;
  }
  bool ConsumeWord(std::string_view word) {
    if (Cur().kind != TokKind::kName || Cur().text != word) return false;
    Advance();
    return true;
  }
  Status ErrorHere(std::string msg) const {
    return Status::ParseError(msg + " (found " + TokKindName(Cur().kind) +
                              " at offset " + std::to_string(Cur().pos) + ")");
  }
  Status ExpectEnd() const {
    if (Cur().kind != TokKind::kEnd) {
      return ErrorHere("trailing input after expression");
    }
    return Status::OK();
  }
  Status Expect(TokKind kind) {
    if (Cur().kind != kind) {
      return ErrorHere("expected " + TokKindName(kind));
    }
    Advance();
    return Status::OK();
  }

  // path ::= ['/' | '//'] term ('|' term)*
  Result<std::unique_ptr<PathExpr>> ParsePath() {
    std::vector<std::unique_ptr<PathExpr>> branches;
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> first, ParseTerm());
    branches.push_back(std::move(first));
    while (ConsumeIf(TokKind::kPipe)) {
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> next, ParseTerm());
      branches.push_back(std::move(next));
    }
    return PathExpr::Union(std::move(branches));
  }

  // term ::= step (('/' | '//') step)*   — with qualifier-tail stop support
  Result<std::unique_ptr<PathExpr>> ParseTerm() {
    std::vector<std::unique_ptr<PathExpr>> parts;
    // Leading '/' (absolute, no-op) or '//' (descendants of the context).
    if (ConsumeIf(TokKind::kDoubleSlash)) {
      parts.push_back(PathExpr::Star(PathExpr::Wildcard()));
    } else {
      (void)ConsumeIf(TokKind::kSlash);
    }
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> step, ParseStep());
    parts.push_back(std::move(step));
    while (true) {
      if (Cur().kind == TokKind::kSlash) {
        // Stop before '/@a' and '/text()': those belong to the enclosing
        // comparison (qualifier context); in pure path context the caller
        // will report them as errors.
        TokKind after = Peek().kind;
        if (after == TokKind::kAt || after == TokKind::kTextFn) break;
        Advance();
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> s, ParseStep());
        parts.push_back(std::move(s));
      } else if (Cur().kind == TokKind::kDoubleSlash) {
        Advance();
        parts.push_back(PathExpr::Star(PathExpr::Wildcard()));
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> s, ParseStep());
        parts.push_back(std::move(s));
      } else {
        break;
      }
    }
    return PathExpr::Seq(std::move(parts));
  }

  // step ::= primary postfix*
  Result<std::unique_ptr<PathExpr>> ParseStep() {
    std::unique_ptr<PathExpr> p;
    switch (Cur().kind) {
      case TokKind::kName:
        p = PathExpr::Label(Cur().text);
        Advance();
        break;
      case TokKind::kStar:
        p = PathExpr::Wildcard();
        Advance();
        break;
      case TokKind::kDot:
        p = PathExpr::Empty();
        Advance();
        break;
      case TokKind::kLParen: {
        Advance();
        SMOQE_ASSIGN_OR_RETURN(p, ParsePath());
        SMOQE_RETURN_IF_ERROR(Expect(TokKind::kRParen));
        break;
      }
      default:
        return ErrorHere("expected a step (name, '*', '.', or '(')");
    }
    // Postfixes.
    while (true) {
      if (Cur().kind == TokKind::kLBracket) {
        Advance();
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q, ParseQual());
        SMOQE_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
        p = PathExpr::Pred(std::move(p), std::move(q));
      } else if (Cur().kind == TokKind::kStar) {
        Advance();
        p = PathExpr::Star(std::move(p));
      } else {
        break;
      }
    }
    return p;
  }

  // qual ::= andq ('or' andq)*
  Result<std::unique_ptr<Qualifier>> ParseQual() {
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q, ParseAnd());
    while (Cur().kind == TokKind::kName && Cur().text == "or") {
      Advance();
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> rhs, ParseAnd());
      q = Qualifier::Or(std::move(q), std::move(rhs));
    }
    return q;
  }

  Result<std::unique_ptr<Qualifier>> ParseAnd() {
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q, ParseUnary());
    while (Cur().kind == TokKind::kName && Cur().text == "and") {
      Advance();
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> rhs, ParseUnary());
      q = Qualifier::And(std::move(q), std::move(rhs));
    }
    return q;
  }

  Result<std::unique_ptr<Qualifier>> ParseUnary() {
    if (Cur().kind == TokKind::kName && Cur().text == "not" &&
        Peek().kind == TokKind::kLParen) {
      Advance();
      Advance();
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> inner, ParseQual());
      SMOQE_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return Qualifier::Not(std::move(inner));
    }
    if (ConsumeIf(TokKind::kTrueFn)) {
      return Qualifier::True();
    }
    // Try a comparison; on failure, backtrack and try '(' qual ')'.
    size_t saved = pos_;
    auto cmp = ParseComparison();
    if (cmp.ok()) return cmp;
    if (tokens_[saved].kind == TokKind::kLParen) {
      pos_ = saved;
      Advance();
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> inner, ParseQual());
      SMOQE_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return inner;
    }
    return cmp.status();
  }

  // comparison ::= cpath (('='|'!=') STRING)?
  Result<std::unique_ptr<Qualifier>> ParseComparison() {
    std::unique_ptr<PathExpr> path;
    bool text_test = false;
    bool attr_test = false;
    std::string attr_name;

    if (Cur().kind == TokKind::kAt) {
      Advance();
      if (Cur().kind != TokKind::kName) return ErrorHere("expected attribute name");
      attr_test = true;
      attr_name = Cur().text;
      Advance();
      path = PathExpr::Empty();
    } else if (ConsumeIf(TokKind::kTextFn)) {
      text_test = true;
      path = PathExpr::Empty();
    } else {
      SMOQE_ASSIGN_OR_RETURN(path, ParsePath());
      if (Cur().kind == TokKind::kSlash && Peek().kind == TokKind::kAt) {
        Advance();
        Advance();
        if (Cur().kind != TokKind::kName) {
          return ErrorHere("expected attribute name after '@'");
        }
        attr_test = true;
        attr_name = Cur().text;
        Advance();
      } else if (Cur().kind == TokKind::kSlash &&
                 Peek().kind == TokKind::kTextFn) {
        Advance();
        Advance();
        text_test = true;
      }
    }

    bool negated = false;
    bool has_cmp = false;
    std::string value;
    if (Cur().kind == TokKind::kEq || Cur().kind == TokKind::kNeq) {
      negated = Cur().kind == TokKind::kNeq;
      Advance();
      if (Cur().kind != TokKind::kString) {
        return ErrorHere("expected a quoted string after comparison operator");
      }
      has_cmp = true;
      value = Cur().text;
      Advance();
    }

    std::unique_ptr<Qualifier> q;
    if (attr_test) {
      q = has_cmp ? Qualifier::AttrEq(std::move(path), std::move(attr_name),
                                      std::move(value))
                  : Qualifier::Attr(std::move(path), std::move(attr_name));
    } else if (text_test) {
      if (!has_cmp) {
        return ErrorHere("text() must be compared to a string");
      }
      q = Qualifier::TextEq(std::move(path), std::move(value));
    } else if (has_cmp) {
      q = Qualifier::TextEq(std::move(path), std::move(value));
    } else {
      q = Qualifier::Path(std::move(path));
    }
    if (negated) q = Qualifier::Not(std::move(q));
    return q;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> ParseQuery(std::string_view input) {
  SMOQE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  auto result = parser.ParseFullQuery();
  if (!result.ok()) {
    return result.status().WithContext("parsing query '" + std::string(input) +
                                       "'");
  }
  return result;
}

Result<std::unique_ptr<Qualifier>> ParseQualifierExpr(std::string_view input) {
  SMOQE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  auto result = parser.ParseFullQualifier();
  if (!result.ok()) {
    return result.status().WithContext("parsing qualifier '" +
                                       std::string(input) + "'");
  }
  return result;
}

}  // namespace smoqe::rxpath
