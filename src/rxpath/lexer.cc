#include "src/rxpath/lexer.h"

#include <cctype>

#include "src/common/strings.h"

namespace smoqe::rxpath {

namespace {

bool MatchesCall(std::string_view input, size_t pos) {
  // Optional whitespace, then "()".
  while (pos < input.size() &&
         std::isspace(static_cast<unsigned char>(input[pos]))) {
    ++pos;
  }
  return pos + 1 < input.size() && input[pos] == '(' && input[pos + 1] == ')';
}

size_t SkipCall(std::string_view input, size_t pos) {
  while (pos < input.size() &&
         std::isspace(static_cast<unsigned char>(input[pos]))) {
    ++pos;
  }
  return pos + 2;  // past "()"
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    switch (c) {
      case '/':
        if (i + 1 < input.size() && input[i + 1] == '/') {
          tok.kind = TokKind::kDoubleSlash;
          i += 2;
        } else {
          tok.kind = TokKind::kSlash;
          ++i;
        }
        break;
      case '(':
        tok.kind = TokKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokKind::kRParen;
        ++i;
        break;
      case '[':
        tok.kind = TokKind::kLBracket;
        ++i;
        break;
      case ']':
        tok.kind = TokKind::kRBracket;
        ++i;
        break;
      case '|':
        tok.kind = TokKind::kPipe;
        ++i;
        break;
      case '*':
        tok.kind = TokKind::kStar;
        ++i;
        break;
      case '.':
        tok.kind = TokKind::kDot;
        ++i;
        break;
      case '@':
        tok.kind = TokKind::kAt;
        ++i;
        break;
      case '=':
        tok.kind = TokKind::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          tok.kind = TokKind::kNeq;
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(i));
        }
        break;
      case '\'':
      case '"': {
        char quote = c;
        size_t end = input.find(quote, i + 1);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(i));
        }
        tok.kind = TokKind::kString;
        tok.text = std::string(input.substr(i + 1, end - i - 1));
        i = end + 1;
        break;
      }
      default: {
        if (!IsNameStartChar(c)) {
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
        }
        size_t start = i;
        while (i < input.size() && IsNameChar(input[i])) ++i;
        std::string_view name = input.substr(start, i - start);
        if (name == "text" && MatchesCall(input, i)) {
          tok.kind = TokKind::kTextFn;
          i = SkipCall(input, i);
        } else if (name == "true" && MatchesCall(input, i)) {
          tok.kind = TokKind::kTrueFn;
          i = SkipCall(input, i);
        } else {
          tok.kind = TokKind::kName;
          tok.text = std::string(name);
        }
        break;
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.pos = input.size();
  out.push_back(end);
  return out;
}

std::string TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kName:
      return "name";
    case TokKind::kString:
      return "string literal";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kDoubleSlash:
      return "'//'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kPipe:
      return "'|'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kAt:
      return "'@'";
    case TokKind::kEq:
      return "'='";
    case TokKind::kNeq:
      return "'!='";
    case TokKind::kTextFn:
      return "text()";
    case TokKind::kTrueFn:
      return "true()";
    case TokKind::kEnd:
      return "end of input";
  }
  return "?";
}

}  // namespace smoqe::rxpath
