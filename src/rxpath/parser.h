#ifndef SMOQE_RXPATH_PARSER_H_
#define SMOQE_RXPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/status.h"
#include "src/rxpath/ast.h"

namespace smoqe::rxpath {

/// \brief Parses a Regular XPath query.
///
/// Grammar (desugarings applied by the parser are noted):
///
///   path   ::= ['/' | '//'] term ('|' term)*
///   term   ::= step (('/' | '//') step)*          // '//'  ⇒  /(*)*/
///   step   ::= primary postfix*
///   primary::= NAME | '*' | '.' | '(' path ')'
///   postfix::= '[' qual ']'                        // predicate
///            | '*'                                 // Kleene star
///   qual   ::= orq ; orq ::= andq ('or' andq)* ; andq ::= unary ('and' unary)*
///   unary  ::= 'not' '(' qual ')' | comparison | '(' qual ')' | true()
///   comparison ::= cpath (('='|'!=') STRING)?
///   cpath  ::= '@' NAME | 'text()' | path ['/' ('@' NAME | 'text()')]
///
/// Notes:
///  * Queries are evaluated from a virtual document node above the root, so
///    `hospital/patient` matches from the root element's name down; a
///    leading '/' is accepted and means the same thing.
///  * Attribute and text() tests are only valid inside qualifiers.
///  * `p = 'c'` and `p/text() = 'c'` are the same test: some node reached
///    by p has direct text equal to 'c'; `p != 'c'` is not(p = 'c').
Result<std::unique_ptr<PathExpr>> ParseQuery(std::string_view input);

/// Parses a standalone qualifier (used by the policy/annotation formats).
Result<std::unique_ptr<Qualifier>> ParseQualifierExpr(std::string_view input);

}  // namespace smoqe::rxpath

#endif  // SMOQE_RXPATH_PARSER_H_
