#include "src/automata/mfa.h"

#include <functional>

#include "src/rxpath/printer.h"

namespace smoqe::automata {

using rxpath::PathExpr;
using rxpath::Qualifier;

MfaBuilder::MfaBuilder(std::shared_ptr<xml::NameTable> names)
    : names_(std::move(names)) {}

int MfaBuilder::CompilePath(const PathExpr& path, int in) {
  switch (path.kind()) {
    case PathExpr::Kind::kEmpty:
      return in;
    case PathExpr::Kind::kLabel: {
      int out = build_.AddState();
      build_.AddTransition(in, LabelTest::Name(names_->Intern(path.label())),
                           out);
      return out;
    }
    case PathExpr::Kind::kWildcard: {
      int out = build_.AddState();
      build_.AddTransition(in, LabelTest::Wildcard(), out);
      return out;
    }
    case PathExpr::Kind::kSeq: {
      int cur = in;
      for (const auto& part : path.parts()) cur = CompilePath(*part, cur);
      return cur;
    }
    case PathExpr::Kind::kUnion: {
      int out = build_.AddState();
      for (const auto& part : path.parts()) {
        int branch_in = build_.AddState();
        build_.AddEps(in, branch_in);
        int branch_out = CompilePath(*part, branch_in);
        build_.AddEps(branch_out, out);
      }
      return out;
    }
    case PathExpr::Kind::kStar: {
      // Classic Thompson star with dedicated entry/exit so annotations in
      // the body charge once per iteration at the right nodes.
      int body_in = build_.AddState();
      int out = build_.AddState();
      build_.AddEps(in, body_in);
      build_.AddEps(in, out);
      int body_out = CompilePath(path.body(), body_in);
      build_.AddEps(body_out, body_in);
      build_.AddEps(body_out, out);
      return out;
    }
    case PathExpr::Kind::kPred: {
      int base_out = CompilePath(*path.parts()[0], in);
      PredId pred = CompileQualifier(path.qual());
      // Entering the post-base state at a node charges the predicate there.
      // Route through a fresh annotated state so the annotation does not
      // leak onto unrelated paths sharing `base_out`.
      int out = build_.AddState();
      build_.AddEps(base_out, out);
      build_.Annotate(out, pred);
      return out;
    }
  }
  return in;
}

AcceptTest MfaBuilder::MakeAcceptTest(const Qualifier& leaf) {
  AcceptTest test;
  switch (leaf.kind()) {
    case Qualifier::Kind::kPath:
      test.kind = AcceptTest::Kind::kExists;
      break;
    case Qualifier::Kind::kTextEq:
      test.kind = AcceptTest::Kind::kTextEq;
      test.value = leaf.value();
      break;
    case Qualifier::Kind::kAttr:
      test.kind = leaf.has_value() ? AcceptTest::Kind::kAttrEq
                                   : AcceptTest::Kind::kAttrExists;
      test.attr = names_->Intern(leaf.attr_name());
      test.value = leaf.value();
      break;
    default:
      break;  // non-leaf kinds never reach here
  }
  return test;
}

PredId MfaBuilder::CompileQualifier(const Qualifier& qual) {
  return CompileQualifierVia(qual,
                             [this](const Qualifier& leaf, AcceptTest test) {
                               return CompileObligation(leaf.path(),
                                                        std::move(test));
                             });
}

PredId MfaBuilder::CompileQualifierVia(const Qualifier& qual,
                                       const LeafCompiler& leaf_compiler) {
  Pred pred;
  pred.description = rxpath::ToString(qual);

  std::function<int(const Qualifier&)> compile =
      [&](const Qualifier& q) -> int {
    Pred::BNode node;
    switch (q.kind()) {
      case Qualifier::Kind::kTrue:
        node.kind = Pred::BNode::Kind::kTrue;
        break;
      case Qualifier::Kind::kPath:
      case Qualifier::Kind::kTextEq:
      case Qualifier::Kind::kAttr: {
        node.kind = Pred::BNode::Kind::kLeaf;
        node.leaf = static_cast<int>(pred.leaf_obligations.size());
        pred.leaf_obligations.push_back(leaf_compiler(q, MakeAcceptTest(q)));
        break;
      }
      case Qualifier::Kind::kNot: {
        node.kind = Pred::BNode::Kind::kNot;
        node.left = compile(q.left());
        break;
      }
      case Qualifier::Kind::kAnd:
      case Qualifier::Kind::kOr: {
        node.kind = q.kind() == Qualifier::Kind::kAnd ? Pred::BNode::Kind::kAnd
                                                      : Pred::BNode::Kind::kOr;
        node.left = compile(q.left());
        node.right = compile(q.right());
        break;
      }
    }
    pred.bnodes.push_back(node);
    return static_cast<int>(pred.bnodes.size()) - 1;
  };

  pred.root = compile(qual);
  preds_.push_back(std::move(pred));
  return static_cast<PredId>(preds_.size()) - 1;
}

ObligationId MfaBuilder::CompileObligation(const PathExpr& path,
                                           AcceptTest test) {
  return CompileObligationVia(std::move(test), [&](int start) {
    return std::vector<int>{CompilePath(path, start)};
  });
}

ObligationId MfaBuilder::CompileObligationVia(
    AcceptTest test, const std::function<std::vector<int>(int)>& body) {
  // Each obligation gets its own NFA: the working automaton is swapped out
  // for the duration. Predicate/obligation tables are shared, so `body`
  // may recursively compile nested qualifiers through this builder.
  BuildNfa saved = std::move(build_);
  build_ = BuildNfa();
  int start = build_.AddState();
  std::vector<int> accepts = body(start);

  Obligation ob;
  std::vector<bool> accepting(build_.num_states(), false);
  for (int a : accepts) accepting[a] = true;
  ob.nfa = FlatNfa::Flatten(build_, start, accepting);
  ob.test = std::move(test);

  build_ = std::move(saved);
  obligations_.push_back(std::move(ob));
  return static_cast<ObligationId>(obligations_.size()) - 1;
}

Mfa MfaBuilder::Finish(int start, std::vector<int> accept_states) {
  std::vector<bool> accepting(build_.num_states(), false);
  for (int s : accept_states) accepting[s] = true;
  Mfa mfa;
  mfa.selection_ = FlatNfa::Flatten(build_, start, accepting);
  mfa.preds_ = std::move(preds_);
  mfa.obligations_ = std::move(obligations_);
  mfa.names_ = std::move(names_);
  return mfa;
}

Result<Mfa> Mfa::Compile(const PathExpr& query,
                         std::shared_ptr<xml::NameTable> names) {
  if (names == nullptr) {
    return Status::InvalidArgument("Mfa::Compile requires a name table");
  }
  MfaBuilder builder(std::move(names));
  int start = builder.build()->AddState();
  int out = builder.CompilePath(query, start);
  return builder.Finish(start, {out});
}

size_t Mfa::TotalStates() const {
  size_t n = selection_.states.size();
  for (const Obligation& ob : obligations_) n += ob.nfa.states.size();
  return n;
}

size_t Mfa::TotalTransitions() const {
  size_t n = selection_.TransitionCount();
  for (const Obligation& ob : obligations_) n += ob.nfa.TransitionCount();
  return n;
}

size_t Mfa::TotalDispatchEntries() const {
  size_t n = selection_.DispatchEntryCount();
  for (const Obligation& ob : obligations_) n += ob.nfa.DispatchEntryCount();
  return n;
}

namespace {

std::string TestToString(const LabelTest& t, const xml::NameTable& names) {
  return t.wildcard ? "*" : names.NameOf(t.label);
}

std::string PredSetToString(const PredSet& s) {
  if (s.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ",";
    out += "P" + std::to_string(s[i]);
  }
  out += "}";
  return out;
}

void DumpNfa(const FlatNfa& nfa, const xml::NameTable& names,
             const std::string& indent, std::string* out) {
  for (int s = 0; s < nfa.num_states(); ++s) {
    const FlatNfa::State& st = nfa.states[s];
    if (!st.live && st.trans.empty() && st.accept_guards.empty()) continue;
    *out += indent + "state " + std::to_string(s);
    if (!st.accept_guards.empty()) {
      *out += " ACCEPT";
      for (const PredSet& g : st.accept_guards) {
        *out += g.empty() ? "[]" : PredSetToString(g);
      }
    }
    *out += "\n";
    for (const FlatNfa::Transition& t : st.trans) {
      *out += indent + "  --" + TestToString(t.test, names);
      if (!t.src_preds.empty()) *out += " src" + PredSetToString(t.src_preds);
      if (!t.dst_preds.empty()) *out += " dst" + PredSetToString(t.dst_preds);
      *out += "--> " + std::to_string(t.target) + "\n";
    }
  }
}

}  // namespace

std::string Mfa::ToString() const {
  std::string out;
  out += "MFA: " + std::to_string(TotalStates()) + " states, " +
         std::to_string(TotalTransitions()) + " transitions, " +
         std::to_string(preds_.size()) + " predicates, " +
         std::to_string(obligations_.size()) + " obligations\n";
  out += "selection NFA (start " +
         std::to_string(selection_.initial.empty()
                            ? -1
                            : selection_.initial[0].first) +
         PredSetToString(selection_.initial.empty()
                             ? PredSet{}
                             : selection_.initial[0].second) +
         "):\n";
  DumpNfa(selection_, *names_, "  ", &out);
  for (size_t p = 0; p < preds_.size(); ++p) {
    out += "P" + std::to_string(p) + ": [" + preds_[p].description + "]  (";
    for (size_t i = 0; i < preds_[p].leaf_obligations.size(); ++i) {
      if (i > 0) out += ", ";
      out += "O" + std::to_string(preds_[p].leaf_obligations[i]);
    }
    out += ")\n";
  }
  for (size_t o = 0; o < obligations_.size(); ++o) {
    const Obligation& ob = obligations_[o];
    out += "O" + std::to_string(o) + " (";
    switch (ob.test.kind) {
      case AcceptTest::Kind::kExists:
        out += "exists";
        break;
      case AcceptTest::Kind::kTextEq:
        out += "text='" + ob.test.value + "'";
        break;
      case AcceptTest::Kind::kAttrExists:
        out += "@" + names_->NameOf(ob.test.attr);
        break;
      case AcceptTest::Kind::kAttrEq:
        out += "@" + names_->NameOf(ob.test.attr) + "='" + ob.test.value + "'";
        break;
    }
    out += "):\n";
    DumpNfa(ob.nfa, *names_, "  ", &out);
  }
  return out;
}

std::string Mfa::ToDot() const {
  std::string out = "digraph mfa {\n  rankdir=LR;\n";
  auto emit_nfa = [&](const FlatNfa& nfa, const std::string& prefix,
                      const std::string& color) {
    for (int s = 0; s < nfa.num_states(); ++s) {
      const FlatNfa::State& st = nfa.states[s];
      if (!st.live && st.trans.empty() && st.accept_guards.empty()) continue;
      std::string id = prefix + std::to_string(s);
      out += "  " + id + " [label=\"" + std::to_string(s) + "\"";
      if (!st.accept_guards.empty()) out += ", shape=doublecircle";
      out += ", color=" + color + "];\n";
      for (const FlatNfa::Transition& t : st.trans) {
        out += "  " + id + " -> " + prefix + std::to_string(t.target) +
               " [label=\"" + TestToString(t.test, *names_);
        if (!t.dst_preds.empty()) out += " " + PredSetToString(t.dst_preds);
        if (!t.src_preds.empty()) {
          out += " src" + PredSetToString(t.src_preds);
        }
        out += "\"];\n";
      }
    }
  };
  emit_nfa(selection_, "s", "black");
  for (size_t o = 0; o < obligations_.size(); ++o) {
    emit_nfa(obligations_[o].nfa, "o" + std::to_string(o) + "_", "blue");
  }
  // Dotted links from predicates to their obligations, like Fig. 4(a).
  for (size_t p = 0; p < preds_.size(); ++p) {
    std::string pid = "p" + std::to_string(p);
    out += "  " + pid + " [label=\"P" + std::to_string(p) +
           "\", shape=box, style=dashed];\n";
    for (ObligationId ob : preds_[p].leaf_obligations) {
      out += "  " + pid + " -> o" + std::to_string(ob) +
             "_0 [style=dotted];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace smoqe::automata
