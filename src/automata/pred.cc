#include "src/automata/pred.h"

#include <cassert>
#include <functional>

namespace smoqe::automata {

bool Pred::Evaluate(const std::vector<bool>& leaf_values) const {
  assert(leaf_values.size() == leaf_obligations.size());
  std::function<bool(int)> eval = [&](int i) -> bool {
    const BNode& n = bnodes[i];
    switch (n.kind) {
      case BNode::Kind::kTrue:
        return true;
      case BNode::Kind::kLeaf:
        return leaf_values[n.leaf];
      case BNode::Kind::kNot:
        return !eval(n.left);
      case BNode::Kind::kAnd:
        return eval(n.left) && eval(n.right);
      case BNode::Kind::kOr:
        return eval(n.left) || eval(n.right);
    }
    return false;
  };
  return eval(root);
}

}  // namespace smoqe::automata
