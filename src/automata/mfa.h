#ifndef SMOQE_AUTOMATA_MFA_H_
#define SMOQE_AUTOMATA_MFA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/automata/nfa.h"
#include "src/automata/pred.h"
#include "src/common/status.h"
#include "src/rxpath/ast.h"

namespace smoqe::automata {

/// \brief Mixed finite state automaton (MFA) — the paper's representation
/// of a Regular XPath query (Fig. 4(a)).
///
/// An MFA is a selection NFA over child steps, annotated with predicate
/// automata: transitions and accept states charge predicates (`Pred`),
/// whose boolean structure alternates over path `Obligation`s, whose NFAs
/// may in turn charge further predicates — the alternating automata (AFA)
/// of the paper, in a factored form that HyPE executes in one pass.
///
/// The MFA of a query is **linear in the query size**: every AST node
/// contributes O(1) states (verified by MfaTest.SizeLinearInQuery and the
/// E1 benchmark).
class Mfa {
 public:
  Mfa() = default;
  Mfa(Mfa&&) = default;
  Mfa& operator=(Mfa&&) = default;

  /// Compiles a query. Labels are interned into `names` (shared with the
  /// documents the MFA will run on).
  static Result<Mfa> Compile(const rxpath::PathExpr& query,
                             std::shared_ptr<xml::NameTable> names);

  const FlatNfa& selection() const { return selection_; }
  const std::vector<Pred>& preds() const { return preds_; }
  const Pred& pred(PredId id) const { return preds_[id]; }
  const std::vector<Obligation>& obligations() const { return obligations_; }
  const Obligation& obligation(ObligationId id) const {
    return obligations_[id];
  }
  const std::shared_ptr<xml::NameTable>& names() const { return names_; }

  /// Total state / transition counts across the selection NFA and every
  /// obligation NFA (the |MFA| measure of experiment E1).
  size_t TotalStates() const;
  size_t TotalTransitions() const;
  /// Total label-dispatch entries across every NFA (the index the evaluator
  /// consults instead of scanning transitions; sealed by FlatNfa::Flatten,
  /// see docs/DESIGN.md §3.3). Linear in TotalTransitions.
  size_t TotalDispatchEntries() const;

  /// Human-readable dump of the automaton structure — the textual
  /// counterpart of the iSMOQE automaton visualizer (Fig. 4(b)).
  std::string ToString() const;

  /// Graphviz rendering (dotted edges link annotated states to their
  /// predicate boxes, like the paper's figure).
  std::string ToDot() const;

 private:
  friend class MfaBuilder;

  FlatNfa selection_;
  std::vector<Pred> preds_;
  std::vector<Obligation> obligations_;
  std::shared_ptr<xml::NameTable> names_;
};

/// \brief Incremental MFA assembly, shared by the query compiler and the
/// view rewriter (which inlines σ-path fragments while compiling).
///
/// Usage: construct, compile paths/qualifiers into the tables, then
/// `Finish` with the selection automaton's start/accept states.
class MfaBuilder {
 public:
  explicit MfaBuilder(std::shared_ptr<xml::NameTable> names);

  /// The under-construction selection NFA.
  BuildNfa* build() { return &build_; }

  /// Compiles `path` as a fragment of the selection NFA from `in`; returns
  /// the fragment's exit state. Qualifiers become predicate annotations.
  int CompilePath(const rxpath::PathExpr& path, int in);

  /// Compiles a qualifier into the predicate table; returns its id.
  PredId CompileQualifier(const rxpath::Qualifier& qual);

  /// Compiles a path + accept test into the obligation table.
  ObligationId CompileObligation(const rxpath::PathExpr& path,
                                 AcceptTest test);

  /// Hook type for custom leaf compilation: receives the leaf qualifier
  /// (kPath / kTextEq / kAttr) and its ready-made accept test, and must
  /// register an obligation. The view rewriter uses this to compile
  /// qualifier paths with type-threaded σ inlining.
  using LeafCompiler =
      std::function<ObligationId(const rxpath::Qualifier&, AcceptTest)>;

  /// CompileQualifier with a custom leaf compiler.
  PredId CompileQualifierVia(const rxpath::Qualifier& qual,
                             const LeafCompiler& leaf);

  /// Registers an obligation whose NFA is produced by `body`, which runs
  /// against a fresh sub-automaton (the builder's working NFA is swapped
  /// for the duration): body(start) returns the accept states. Re-entrant:
  /// `body` may compile nested qualifiers/obligations through this
  /// builder.
  ObligationId CompileObligationVia(
      AcceptTest test, const std::function<std::vector<int>(int)>& body);

  /// Builds the AcceptTest for a leaf qualifier (interning attr names).
  AcceptTest MakeAcceptTest(const rxpath::Qualifier& leaf);

  /// Flattens and packages the result.
  Mfa Finish(int start, std::vector<int> accept_states);

  xml::NameTable* names() { return names_.get(); }

 private:
  std::shared_ptr<xml::NameTable> names_;
  BuildNfa build_;
  std::vector<Pred> preds_;
  std::vector<Obligation> obligations_;
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_MFA_H_
