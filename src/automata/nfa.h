#ifndef SMOQE_AUTOMATA_NFA_H_
#define SMOQE_AUTOMATA_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/xml/name_table.h"

namespace smoqe::automata {

/// Index into an Mfa's predicate table.
using PredId = int32_t;

/// A child-step label test: a specific element name or any element.
struct LabelTest {
  xml::NameId label = xml::kNoName;
  bool wildcard = false;

  static LabelTest Wildcard() { return LabelTest{xml::kNoName, true}; }
  static LabelTest Name(xml::NameId id) { return LabelTest{id, false}; }

  bool Matches(xml::NameId node_label) const {
    return wildcard || label == node_label;
  }
  bool operator==(const LabelTest& o) const {
    return wildcard == o.wildcard && (wildcard || label == o.label);
  }
};

/// \brief Thompson-construction NFA with ε-transitions, used only during
/// compilation. Predicates are *state annotations*: entering an annotated
/// state at a node charges the predicate at that node.
class BuildNfa {
 public:
  struct Transition {
    LabelTest test;
    int target;
  };

  int AddState() {
    eps_.emplace_back();
    trans_.emplace_back();
    anns_.emplace_back();
    return static_cast<int>(eps_.size()) - 1;
  }

  void AddEps(int from, int to) { eps_[from].push_back(to); }
  void AddTransition(int from, LabelTest test, int to) {
    trans_[from].push_back(Transition{test, to});
  }
  void Annotate(int state, PredId pred) { anns_[state].push_back(pred); }

  int num_states() const { return static_cast<int>(eps_.size()); }
  const std::vector<int>& eps(int s) const { return eps_[s]; }
  const std::vector<Transition>& trans(int s) const { return trans_[s]; }
  const std::vector<PredId>& anns(int s) const { return anns_[s]; }

 private:
  std::vector<std::vector<int>> eps_;
  std::vector<std::vector<Transition>> trans_;
  std::vector<std::vector<PredId>> anns_;
};

/// Sorted, deduplicated set of predicate ids charged together (a
/// conjunction). Empty means "unconditional".
using PredSet = std::vector<PredId>;

/// Merges two PredSets (set union, keeps sorted/unique form).
PredSet MergePredSets(const PredSet& a, const PredSet& b);

/// \brief ε-free runtime NFA. One table lookup per document step.
///
/// Semantics of a transition (see DESIGN.md §3): from node u in state
/// `src`, moving to a child w whose label passes `test`, charge
/// `src_preds` at u and `dst_preds` at w, continue in `target`.
/// Accept guards: a node entered in state s is accepted under any one of
/// `accept_guards[s]` (each alternative a conjunction charged at that
/// node). `initial` lists the (state, guard) pairs active at the context
/// node; `initial_accept_guards` are accept alternatives for the context
/// node itself (queries like "." that select their context).
class FlatNfa {
 public:
  struct Transition {
    LabelTest test;
    PredSet src_preds;
    PredSet dst_preds;
    int target;
  };

  struct State {
    std::vector<Transition> trans;
    std::vector<PredSet> accept_guards;
    /// Label-indexed dispatch over `trans` (sealed by BuildDispatch, which
    /// Flatten always runs last — every FlatNfa in an Mfa is dispatchable).
    /// Named transitions are grouped by label in `by_label`;
    /// `label_spans[l]` is the [begin, end) slice of `by_label` holding the
    /// transition ids whose test is exactly label `l` (dense over NameId up
    /// to the largest label tested by this state). Wildcard transitions
    /// live in `wildcard_trans` and match every label. The evaluator's
    /// per-(run, label) step is then one span lookup plus the wildcard
    /// list, instead of a scan of `trans` with a LabelTest per entry.
    std::vector<int32_t> by_label;
    std::vector<std::pair<int32_t, int32_t>> label_spans;
    std::vector<int32_t> wildcard_trans;
    /// Union of every transition's src_preds and every accept guard's
    /// predicates (sorted, unique) — the predicates a run sitting in this
    /// state can charge at its node. Sealed alongside the dispatch table
    /// so eager instantiation reads one short list instead of walking
    /// `trans` again on every (run, node).
    std::vector<PredId> eager_preds;

    /// Transition ids whose test names exactly `label` (possibly empty).
    /// Wildcard transitions are not included; callers walk
    /// `wildcard_trans` separately.
    std::pair<const int32_t*, const int32_t*> LabelSpan(
        xml::NameId label) const {
      if (static_cast<size_t>(label) >= label_spans.size()) {
        return {nullptr, nullptr};
      }
      const auto& [b, e] = label_spans[static_cast<size_t>(label)];
      return {by_label.data() + b, by_label.data() + e};
    }
    /// Labels that EVERY accepting continuation (of ≥1 step) from this
    /// state must consume at least once (sorted). The TAX prune test: if
    /// any necessary label is absent from a subtree's descendant-type set,
    /// a run sitting at this state cannot accept inside that subtree.
    /// Computed as a greatest fixpoint (wildcard steps contribute no
    /// label), so `//`-style loops still yield useful sets — e.g. for
    /// `(*)*/parent/patient` the set is {parent, patient}.
    std::vector<xml::NameId> necessary_labels;
    /// True if acceptance is reachable at all from this state.
    bool live = true;
  };

  std::vector<State> states;
  std::vector<std::pair<int, PredSet>> initial;
  std::vector<PredSet> initial_accept_guards;

  int num_states() const { return static_cast<int>(states.size()); }
  size_t TransitionCount() const;
  /// Total `by_label` + `wildcard_trans` entries across all states (the
  /// memory footprint of the dispatch index, reported by Mfa stats).
  size_t DispatchEntryCount() const;

  /// (Re)builds every state's label dispatch table from its transition
  /// list. Flatten calls this last; call it again only after mutating
  /// `states[*].trans` by hand (tests do).
  void BuildDispatch();

  /// Flattens a BuildNfa: eliminates ε-transitions, folding state
  /// annotations into per-transition charges and accept guards, and
  /// computes reachability metadata. `accepting` flags construction
  /// states.
  static FlatNfa Flatten(const BuildNfa& build, int start,
                         const std::vector<bool>& accepting);
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_NFA_H_
