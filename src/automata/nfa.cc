#include "src/automata/nfa.h"

#include <algorithm>
#include <set>

#include "src/common/bitset.h"

namespace smoqe::automata {

PredSet MergePredSets(const PredSet& a, const PredSet& b) {
  PredSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

namespace {

PredSet Normalize(PredSet s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

bool IsSubset(const PredSet& a, const PredSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Inserts `g` into an antichain of minimal guard sets: drops it when a
/// weaker (subset) guard is already present, evicts stronger ones. A guard
/// is a conjunction, so fewer predicates ⇒ weaker condition ⇒ dominant.
void InsertGuard(std::vector<PredSet>* guards, PredSet g) {
  for (const PredSet& h : *guards) {
    if (IsSubset(h, g)) return;
  }
  guards->erase(
      std::remove_if(guards->begin(), guards->end(),
                     [&](const PredSet& h) { return IsSubset(g, h); }),
      guards->end());
  guards->push_back(std::move(g));
}

/// (state, guard) pairs with dominance pruning per state.
class PairSet {
 public:
  explicit PairSet(int num_states) : per_state_(num_states) {}

  /// Returns true if the pair was genuinely new (not dominated).
  bool Insert(int state, PredSet g) {
    std::vector<PredSet>& guards = per_state_[state];
    for (const PredSet& h : guards) {
      if (IsSubset(h, g)) return false;
    }
    guards.erase(
        std::remove_if(guards.begin(), guards.end(),
                       [&](const PredSet& h) { return IsSubset(g, h); }),
        guards.end());
    guards.push_back(std::move(g));
    return true;
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t s = 0; s < per_state_.size(); ++s) {
      for (const PredSet& g : per_state_[s]) fn(static_cast<int>(s), g);
    }
  }

 private:
  std::vector<std::vector<PredSet>> per_state_;
};

/// ε-closure of `s` with guard accumulation: the closure contains (s, ∅);
/// following an ε edge into q' charges ann(q') at the current node.
PairSet Closure(const BuildNfa& build, int s) {
  PairSet pairs(build.num_states());
  std::vector<std::pair<int, PredSet>> work;
  pairs.Insert(s, {});
  work.emplace_back(s, PredSet{});
  while (!work.empty()) {
    auto [q, g] = std::move(work.back());
    work.pop_back();
    for (int q2 : build.eps(q)) {
      PredSet g2 = MergePredSets(g, Normalize(build.anns(q2)));
      if (pairs.Insert(q2, g2)) {
        work.emplace_back(q2, std::move(g2));
      }
    }
  }
  return pairs;
}

}  // namespace

size_t FlatNfa::TransitionCount() const {
  size_t n = 0;
  for (const State& s : states) n += s.trans.size();
  return n;
}

size_t FlatNfa::DispatchEntryCount() const {
  size_t n = 0;
  for (const State& s : states) {
    n += s.by_label.size() + s.wildcard_trans.size();
  }
  return n;
}

void FlatNfa::BuildDispatch() {
  for (State& st : states) {
    st.by_label.clear();
    st.label_spans.clear();
    st.wildcard_trans.clear();
    st.eager_preds.clear();
    for (const Transition& t : st.trans) {
      st.eager_preds.insert(st.eager_preds.end(), t.src_preds.begin(),
                            t.src_preds.end());
    }
    for (const PredSet& g : st.accept_guards) {
      st.eager_preds.insert(st.eager_preds.end(), g.begin(), g.end());
    }
    std::sort(st.eager_preds.begin(), st.eager_preds.end());
    st.eager_preds.erase(
        std::unique(st.eager_preds.begin(), st.eager_preds.end()),
        st.eager_preds.end());
    xml::NameId max_label = -1;
    for (const Transition& t : st.trans) {
      if (!t.test.wildcard) max_label = std::max(max_label, t.test.label);
    }
    if (max_label >= 0) {
      st.label_spans.assign(static_cast<size_t>(max_label) + 1, {0, 0});
    }
    // Counting sort of the named transition ids by label: count, prefix-sum
    // into span begins, then place. Keeps `trans`-order within each label
    // so the dispatch path fires transitions in the same relative order as
    // the linear scan it replaces.
    for (const Transition& t : st.trans) {
      if (!t.test.wildcard) {
        ++st.label_spans[static_cast<size_t>(t.test.label)].second;
      }
    }
    int32_t total = 0;
    for (auto& [b, e] : st.label_spans) {
      b = total;
      total += e;
      e = b;  // reused as the placement cursor below
    }
    st.by_label.resize(static_cast<size_t>(total));
    for (size_t i = 0; i < st.trans.size(); ++i) {
      const Transition& t = st.trans[i];
      if (t.test.wildcard) {
        st.wildcard_trans.push_back(static_cast<int32_t>(i));
      } else {
        auto& [b, e] = st.label_spans[static_cast<size_t>(t.test.label)];
        st.by_label[static_cast<size_t>(e++)] = static_cast<int32_t>(i);
      }
    }
  }
}

FlatNfa FlatNfa::Flatten(const BuildNfa& build, int start,
                         const std::vector<bool>& accepting) {
  FlatNfa flat;
  flat.states.resize(build.num_states());

  for (int s = 0; s < build.num_states(); ++s) {
    PairSet closure = Closure(build, s);
    State& out = flat.states[s];
    closure.ForEach([&](int q, const PredSet& g) {
      for (const BuildNfa::Transition& t : build.trans(q)) {
        Transition ft;
        ft.test = t.test;
        ft.src_preds = g;
        ft.dst_preds = Normalize(build.anns(t.target));
        ft.target = t.target;
        bool dup = false;
        for (const Transition& e : out.trans) {
          if (e.test == ft.test && e.target == ft.target &&
              e.src_preds == ft.src_preds && e.dst_preds == ft.dst_preds) {
            dup = true;
            break;
          }
        }
        if (!dup) out.trans.push_back(std::move(ft));
      }
      if (accepting[q]) {
        InsertGuard(&out.accept_guards, g);
      }
    });
  }

  // Initial pair: entering the start state charges its own annotations.
  PredSet start_anns = Normalize(build.anns(start));
  flat.initial.emplace_back(start, start_anns);
  for (const PredSet& g : flat.states[start].accept_guards) {
    flat.initial_accept_guards.push_back(MergePredSets(g, start_anns));
  }

  // Liveness: states from which acceptance is reachable.
  std::vector<bool> live(flat.states.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < flat.states.size(); ++s) {
      if (live[s]) continue;
      bool l = !flat.states[s].accept_guards.empty();
      if (!l) {
        for (const Transition& t : flat.states[s].trans) {
          if (live[t.target]) {
            l = true;
            break;
          }
        }
      }
      if (l) {
        live[s] = true;
        changed = true;
      }
    }
  }
  // Transitions into dead states can never contribute answers; drop them.
  for (State& s : flat.states) {
    s.trans.erase(
        std::remove_if(s.trans.begin(), s.trans.end(),
                       [&](const Transition& t) { return !live[t.target]; }),
        s.trans.end());
  }
  for (size_t s = 0; s < flat.states.size(); ++s) {
    flat.states[s].live = live[s];
  }

  // Necessary-label sets (greatest fixpoint over the pruned graph).
  //
  //   A(q) — necessary labels to accept from q allowing zero steps:
  //          ∅ when q accepts, else F(q).
  //   F(q) — necessary labels to accept from q in ≥1 step:
  //          ∩ over transitions t of (label(t) ∪ A(target)), with
  //          wildcard transitions contributing no label.
  //
  // Initialized to the full label universe and iterated downward. Dead
  // states keep the full set — a run stuck there can always be pruned
  // (it can never accept), which is exactly what the test implies.
  {
    std::set<xml::NameId> universe_set;
    for (const State& st : flat.states) {
      for (const Transition& t : st.trans) {
        if (!t.test.wildcard) universe_set.insert(t.test.label);
      }
    }
    std::vector<xml::NameId> universe(universe_set.begin(),
                                      universe_set.end());
    auto bit_of = [&](xml::NameId l) {
      return static_cast<size_t>(
          std::lower_bound(universe.begin(), universe.end(), l) -
          universe.begin());
    };
    const size_t w = universe.size();
    std::vector<DynamicBitset> f(flat.states.size(), DynamicBitset(w));
    for (auto& b : f) {
      for (size_t i = 0; i < w; ++i) b.Set(i);  // ⊤
    }
    auto a_of = [&](size_t q) -> DynamicBitset {
      if (!flat.states[q].accept_guards.empty()) {
        return DynamicBitset(w);  // ∅
      }
      return f[q];
    };
    changed = true;
    while (changed) {
      changed = false;
      for (size_t q = 0; q < flat.states.size(); ++q) {
        if (flat.states[q].trans.empty()) continue;  // stays ⊤
        DynamicBitset acc(w);
        bool first = true;
        for (const Transition& t : flat.states[q].trans) {
          DynamicBitset term = a_of(static_cast<size_t>(t.target));
          if (!t.test.wildcard) term.Set(bit_of(t.test.label));
          if (first) {
            acc = std::move(term);
            first = false;
          } else {
            acc.IntersectWith(term);
          }
        }
        if (!(acc == f[q])) {
          f[q] = std::move(acc);
          changed = true;
        }
      }
    }
    for (size_t q = 0; q < flat.states.size(); ++q) {
      f[q].ForEachSetBit([&](size_t bit) {
        flat.states[q].necessary_labels.push_back(universe[bit]);
      });
    }
  }
  // Seal: every FlatNfa leaving the builder carries its dispatch index.
  flat.BuildDispatch();
  return flat;
}

}  // namespace smoqe::automata
