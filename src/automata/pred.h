#ifndef SMOQE_AUTOMATA_PRED_H_
#define SMOQE_AUTOMATA_PRED_H_

#include <string>
#include <vector>

#include "src/automata/nfa.h"

namespace smoqe::automata {

/// Index into an Mfa's obligation table.
using ObligationId = int32_t;

/// What must hold at a node where an obligation's path NFA accepts.
struct AcceptTest {
  enum class Kind {
    kExists,      ///< reaching the node is enough (existential path)
    kTextEq,      ///< node's direct text equals `value`
    kAttrExists,  ///< node carries attribute `attr`
    kAttrEq,      ///< node carries attribute `attr` with value `value`
  };
  Kind kind = Kind::kExists;
  xml::NameId attr = xml::kNoName;
  std::string value;
};

/// \brief A path obligation: the automaton of one qualifier path, run
/// downward from the anchor node of the enclosing predicate instance.
///
/// The path NFA may itself charge nested predicates (its transitions carry
/// PredIds of the same Mfa), which is how alternation nests — this is the
/// paper's AFA, factored into reusable path automata plus the boolean
/// structure in `Pred`.
struct Obligation {
  FlatNfa nfa;
  AcceptTest test;
};

/// \brief The boolean structure of one predicate `[q]` — an alternating
/// layer over obligations.
///
/// Stored as a flat node array (no pointers) so predicates can live in a
/// table inside Mfa and be referenced by PredId from transitions.
struct Pred {
  struct BNode {
    enum class Kind { kAnd, kOr, kNot, kLeaf, kTrue };
    Kind kind = Kind::kTrue;
    int left = -1;   ///< kAnd/kOr/kNot
    int right = -1;  ///< kAnd/kOr
    int leaf = -1;   ///< kLeaf: position into `leaf_obligations`
  };

  std::vector<BNode> bnodes;
  int root = -1;
  /// Printable form of the original qualifier (for dumps/tracing).
  std::string description;

  /// Evaluates the boolean tree given leaf outcomes (indexed by the
  /// *positions of this predicate's leaves*, see `leaf_obligations`).
  bool Evaluate(const std::vector<bool>& leaf_values) const;

  /// Obligations of this predicate's kLeaf nodes in bnode order; leaf i of
  /// `Evaluate` corresponds to `leaf_obligations[i]`.
  std::vector<ObligationId> leaf_obligations;
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_PRED_H_
