#include "src/automata/regex_extract.h"

namespace smoqe::automata {

using rxpath::PathExpr;

namespace {

std::unique_ptr<PathExpr> UnionMerge(std::unique_ptr<PathExpr> a,
                                     std::unique_ptr<PathExpr> b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->Equals(*b)) return a;
  std::vector<std::unique_ptr<PathExpr>> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  return PathExpr::Union(std::move(parts));
}

}  // namespace

void PathAutomaton::AddEdge(int from, int to,
                            std::unique_ptr<PathExpr> label) {
  auto& slot = adj_[from][to];
  slot = UnionMerge(std::move(slot), std::move(label));
}

Result<std::map<int, std::unique_ptr<PathExpr>>> PathAutomaton::ExtractPaths(
    int start, const std::set<int>& accepts) const {
  if (accepts.count(start) > 0) {
    return Status::InvalidArgument(
        "state elimination requires start ∉ accepts");
  }
  // Working copy of the adjacency with cloned labels.
  std::vector<std::map<int, std::unique_ptr<PathExpr>>> edges(adj_.size());
  for (size_t from = 0; from < adj_.size(); ++from) {
    for (const auto& [to, label] : adj_[from]) {
      edges[from][to] = label->Clone();
    }
  }
  // Reverse adjacency for efficient in-edge lookup.
  std::vector<std::set<int>> rev(adj_.size());
  for (size_t from = 0; from < adj_.size(); ++from) {
    for (const auto& [to, label] : adj_[from]) {
      rev[to].insert(static_cast<int>(from));
    }
  }

  auto erase_edge = [&](int from, int to) {
    edges[from].erase(to);
    rev[to].erase(from);
  };

  for (int s = 0; s < static_cast<int>(adj_.size()); ++s) {
    if (s == start || accepts.count(s) > 0) continue;
    // Self loop contributes (loop)* between in and out edges.
    std::unique_ptr<PathExpr> loop;
    auto self = edges[s].find(s);
    if (self != edges[s].end()) {
      loop = PathExpr::Star(std::move(self->second));
      erase_edge(s, s);
    }
    // Snapshot in/out neighbor lists before mutation.
    std::vector<int> ins(rev[s].begin(), rev[s].end());
    std::vector<std::pair<int, std::unique_ptr<PathExpr>>> outs;
    for (auto& [to, label] : edges[s]) {
      outs.emplace_back(to, std::move(label));
    }
    for (auto& [to, label] : outs) rev[to].erase(s);
    edges[s].clear();

    for (int p : ins) {
      std::unique_ptr<PathExpr> in_label = std::move(edges[p][s]);
      erase_edge(p, s);
      for (const auto& [q, out_label] : outs) {
        std::unique_ptr<PathExpr> mid = in_label->Clone();
        if (loop != nullptr) {
          mid = PathExpr::Seq2(std::move(mid), loop->Clone());
        }
        mid = PathExpr::Seq2(std::move(mid), out_label->Clone());
        auto& slot = edges[p][q];
        bool was_absent = slot == nullptr;
        slot = UnionMerge(std::move(slot), std::move(mid));
        if (was_absent) rev[q].insert(p);
      }
    }
  }

  std::map<int, std::unique_ptr<PathExpr>> result;
  for (auto& [to, label] : edges[start]) {
    if (accepts.count(to) > 0) {
      result[to] = std::move(label);
    }
  }
  return result;
}

}  // namespace smoqe::automata
