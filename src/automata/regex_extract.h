#ifndef SMOQE_AUTOMATA_REGEX_EXTRACT_H_
#define SMOQE_AUTOMATA_REGEX_EXTRACT_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/rxpath/ast.h"

namespace smoqe::automata {

/// \brief A small automaton whose edges are labeled with Regular XPath
/// fragments, plus Kleene's state-elimination to read regular expressions
/// back off the graph.
///
/// This is the workhorse of security-view derivation: the hidden region
/// below a visible element type is a label graph; σ(A,B) is the regular
/// expression of all A→B paths through it. Recursive hidden regions
/// produce Kleene stars — exactly the case where plain XPath is not closed
/// and Regular XPath is required (paper §1).
class PathAutomaton {
 public:
  int AddState() {
    adj_.emplace_back();
    return static_cast<int>(adj_.size()) - 1;
  }

  /// Adds an edge; parallel edges union their labels.
  void AddEdge(int from, int to, std::unique_ptr<rxpath::PathExpr> label);

  int num_states() const { return static_cast<int>(adj_.size()); }

  /// Eliminates every state other than `start` and the `accepts` and
  /// returns, per accept state, the Regular XPath of all start→accept
  /// paths (absent key = no path).
  ///
  /// Requirements (satisfied by derivation graphs): `start` has no
  /// incoming edges and accept states have no outgoing edges.
  Result<std::map<int, std::unique_ptr<rxpath::PathExpr>>> ExtractPaths(
      int start, const std::set<int>& accepts) const;

 private:
  // adjacency: adj_[from][to] = merged label
  std::vector<std::map<int, std::unique_ptr<rxpath::PathExpr>>> adj_;
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_REGEX_EXTRACT_H_
