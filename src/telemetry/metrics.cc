#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace smoqe::telemetry {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

namespace {

/// Position of the most significant set bit (v != 0).
inline int MsbIndex(uint64_t v) {
  return 63 - __builtin_clzll(v);
}

/// Relaxed atomic min/max updates; contention is rare after warmup
/// because the stored extreme only tightens.
inline void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  constexpr uint64_t kSub = 1ull << kSubBits;
  if (value < kSub) return static_cast<size_t>(value);
  const int e = MsbIndex(value);  // >= kSubBits
  const uint64_t sub = (value >> (e - kSubBits)) & (kSub - 1);
  return static_cast<size_t>(e - kSubBits + 1) * kSub +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  constexpr uint64_t kSub = 1ull << kSubBits;
  if (index < kSub) return index;
  const uint64_t e = index / kSub + kSubBits - 1;
  const uint64_t sub = index % kSub;
  return (kSub + sub) << (e - kSubBits);
}

void Histogram::Record(uint64_t value) {
  Shard& s = shards_[ThreadShardIndex() & (kShards - 1)];
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(s.min, value);
  AtomicMax(s.max, value);
}

uint64_t Histogram::Fold(uint64_t* out) const {
  uint64_t count = 0;
  for (size_t b = 0; b < kBuckets; ++b) out[b] = 0;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint64_t c = s.buckets[b].load(std::memory_order_relaxed);
      out[b] += c;
      count += c;
    }
  }
  return count;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> buckets(kBuckets);
  const uint64_t count = Fold(buckets.data());
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      const uint64_t lo = BucketLowerBound(b);
      const uint64_t hi =
          b + 1 < kBuckets ? BucketLowerBound(b + 1) : lo + 1;
      // Midpoint of the bucket; exact for the sub-16 unit buckets.
      return static_cast<double>(lo) + (static_cast<double>(hi - lo) - 1) / 2;
    }
  }
  return static_cast<double>(BucketLowerBound(kBuckets - 1));
}

uint64_t Histogram::Count() const {
  uint64_t count = 0;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      count += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return count;
}

uint64_t Histogram::Sum() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t Histogram::Min() const {
  uint64_t min = UINT64_MAX;
  for (const Shard& s : shards_) {
    min = std::min(min, s.min.load(std::memory_order_relaxed));
  }
  return min == UINT64_MAX ? 0 : min;
}

uint64_t Histogram::Max() const {
  uint64_t max = 0;
  for (const Shard& s : shards_) {
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  return max;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  std::vector<uint64_t> buckets(kBuckets);
  Snapshot snap;
  snap.count = Fold(buckets.data());
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  if (snap.count == 0) return snap;
  auto quantile = [&](double q) {
    uint64_t target = static_cast<uint64_t>(std::ceil(q * snap.count));
    if (target == 0) target = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen >= target) {
        const uint64_t lo = BucketLowerBound(b);
        const uint64_t hi =
            b + 1 < kBuckets ? BucketLowerBound(b + 1) : lo + 1;
        return static_cast<double>(lo) +
               (static_cast<double>(hi - lo) - 1) / 2;
      }
    }
    return static_cast<double>(BucketLowerBound(kBuckets - 1));
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "smoqe_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are tame
    out += c;
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::Render(DumpFormat format) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (format == DumpFormat::kJson) {
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + JsonEscape(name) +
             "\": " + std::to_string(c->Value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + JsonEscape(name) +
             "\": " + std::to_string(g->Value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->TakeSnapshot();
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
             std::to_string(s.count) + ", \"sum\": " + std::to_string(s.sum) +
             ", \"min\": " + std::to_string(s.min) +
             ", \"max\": " + std::to_string(s.max) +
             ", \"p50\": " + FormatDouble(s.p50) +
             ", \"p95\": " + FormatDouble(s.p95) +
             ", \"p99\": " + FormatDouble(s.p99) + "}";
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
  }
  // Prometheus text exposition, one # TYPE line per metric family.
  for (const auto& [name, c] : counters_) {
    const std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->TakeSnapshot();
    const std::string pn = PrometheusName(name);
    out += "# TYPE " + pn + " summary\n";
    out += pn + "{quantile=\"0.5\"} " + FormatDouble(s.p50) + "\n";
    out += pn + "{quantile=\"0.95\"} " + FormatDouble(s.p95) + "\n";
    out += pn + "{quantile=\"0.99\"} " + FormatDouble(s.p99) + "\n";
    out += pn + "_sum " + std::to_string(s.sum) + "\n";
    out += pn + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace smoqe::telemetry
