/// \file
/// \brief Process-cheap metrics primitives and the named registry behind
/// `Smoqe::DumpMetrics` (docs/DESIGN.md §8).
///
/// Three metric kinds, all safe to touch from any thread with no locks on
/// the write path:
///
///  * Counter — monotonic, per-thread-sharded relaxed atomics folded on
///    read, so hot-path increments never share a cache line across
///    threads;
///  * Gauge — a single relaxed atomic int64 (set/add); gauges are
///    low-frequency service state (queue depth, cache size), not hot-path
///    events;
///  * Histogram — log-bucketed (16 sub-buckets per power of two, ≤ 6.25%
///    relative error, values below 16 exact) with per-shard bucket
///    arrays; quantiles (p50/p95/p99…) are extracted exactly over the
///    folded buckets.
///
/// The MetricsRegistry maps stable dotted names ("query.latency_ns") to
/// heap-held metric objects; pointers returned by Get* never move or die
/// for the registry's lifetime, so call sites resolve a metric once and
/// increment through the pointer forever. Render() emits the whole
/// registry as JSON or Prometheus text exposition.

#ifndef SMOQE_TELEMETRY_METRICS_H_
#define SMOQE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace smoqe::telemetry {

/// Stable small index for the calling thread, used to pick a metric
/// shard. Assigned on first use per thread, process-wide.
size_t ThreadShardIndex();

/// \brief Monotonic counter. Add() is one relaxed fetch_add on the
/// caller's shard; Value() folds the shards (monitoring-read cost).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) {
    shards_[ThreadShardIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// \brief Point-in-time value (queue depth, cache size, live snapshots).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log-bucketed latency/size histogram with exact quantile
/// extraction over the folded buckets.
///
/// Bucket layout: values < 16 land in their own exact bucket; above that,
/// each power of two splits into 16 geometric sub-buckets, so a recorded
/// value's bucket bounds are within kMaxRelativeError of the value. Full
/// 64-bit range, 976 buckets per shard.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                   // 16 sub-buckets
  static constexpr size_t kBuckets = (64 - kSubBits) * (1u << kSubBits) +
                                     (1u << kSubBits);  // 976
  /// Half the relative width of one sub-bucket — the worst-case error of
  /// a Quantile() estimate vs the exact value (values < 16 are exact).
  static constexpr double kMaxRelativeError = 1.0 / (1u << kSubBits);
  static constexpr size_t kShards = 4;

  void Record(uint64_t value);

  /// q in [0, 1]; returns the midpoint of the bucket holding the value of
  /// rank ceil(q·count) (0 when empty). Folds the shards — a concurrent
  /// Record may or may not be included, which is all monitoring needs.
  double Quantile(double q) const;

  uint64_t Count() const;
  uint64_t Sum() const;
  uint64_t Min() const;  ///< 0 when empty
  uint64_t Max() const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  /// One consistent fold of the shards (count/sum/quantiles agree).
  Snapshot TakeSnapshot() const;

  /// Bucket index of `value` (exposed for the oracle test).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static uint64_t BucketLowerBound(size_t index);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  /// Folds every shard's buckets into `out[kBuckets]`; returns the count.
  uint64_t Fold(uint64_t* out) const;

  Shard shards_[kShards];
};

/// Output format of MetricsRegistry::Render and Smoqe::DumpMetrics.
enum class DumpFormat {
  kJson,        ///< one object: {"counters": …, "gauges": …, "histograms": …}
  kPrometheus,  ///< text exposition: # TYPE lines + samples, smoqe_ prefix
};

/// \brief Named metric registry. Get* creates on first use and returns a
/// stable reference; names are dotted lowercase ("plan_cache.hits").
/// Creation takes a mutex; the returned metric's write path never does.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Renders every registered metric. Histograms emit count/sum/min/max
  /// and p50/p95/p99 (Prometheus: a summary with quantile labels).
  std::string Render(DumpFormat format) const;

  /// Process-wide registry for embedders that aggregate several engines;
  /// `Smoqe` instances own their own registry by default.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;  // guards the maps, never the metrics
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prometheus-legal metric name: "smoqe_" + name with every character
/// outside [a-zA-Z0-9_] replaced by '_'.
std::string PrometheusName(const std::string& name);

}  // namespace smoqe::telemetry

#endif  // SMOQE_TELEMETRY_METRICS_H_
