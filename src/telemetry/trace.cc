#include "src/telemetry/trace.h"

#include <algorithm>
#include <cstdio>

namespace smoqe::telemetry {

namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// "1.234 ms" / "56.7 us" / "890 ns" — keeps the text renderer readable
/// across six orders of magnitude.
std::string HumanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof buf, "%.1f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

Trace::Trace(uint64_t id, std::string name)
    : id_(id),
      name_(std::move(name)),
      t0_(std::chrono::steady_clock::now()),
      start_unix_micros_(NowUnixMicros()) {}

uint64_t Trace::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

int32_t Trace::BeginSpan(std::string name, int32_t parent) {
  const uint64_t now = ElapsedNs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = parent;
  rec.start_ns = now;
  spans_.push_back(std::move(rec));
  return static_cast<int32_t>(spans_.size()) - 1;
}

void Trace::EndSpan(int32_t index) {
  const uint64_t now = ElapsedNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  spans_[static_cast<size_t>(index)].end_ns = now;
}

int32_t Trace::AddCompletedSpan(std::string name, uint64_t duration_ns,
                                int32_t parent) {
  const uint64_t now = ElapsedNs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = parent;
  rec.start_ns = now >= duration_ns ? now - duration_ns : 0;
  rec.end_ns = rec.start_ns + duration_ns;
  spans_.push_back(std::move(rec));
  return static_cast<int32_t>(spans_.size()) - 1;
}

void Trace::SetAttr(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::pair<std::string, std::string>> Trace::attrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attrs_;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<Trace> TraceRecorder::Begin(std::string name) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<Trace>(id, std::move(name));
}

std::shared_ptr<Trace> TraceRecorder::Begin(std::string name, uint64_t id) {
  if (id == 0) return Begin(std::move(name));
  return std::make_shared<Trace>(id, std::move(name));
}

void TraceRecorder::Finish(const std::shared_ptr<Trace>& trace) {
  if (trace == nullptr) return;
  trace->duration_ns_ = trace->ElapsedNs();
  finished_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(trace);
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::shared_ptr<const Trace>> TraceRecorder::Recent(
    size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const Trace>> out;
  const size_t take = std::min(n, ring_.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]);
  }
  return out;
}

std::shared_ptr<const Trace> TraceRecorder::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: caller-chosen wire ids may repeat a minted id, and
  // the caller wants the trace it just finished.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if ((*it)->id() == id) return *it;
  }
  return nullptr;
}

std::shared_ptr<const Trace> TraceRecorder::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const Trace> best;
  for (const auto& t : ring_) {
    if (best == nullptr || t->duration_ns() > best->duration_ns()) best = t;
  }
  return best;
}

std::string TraceRecorder::RenderText(const Trace& trace) {
  const std::vector<SpanRecord> spans = trace.spans();
  std::string out = "trace #" + std::to_string(trace.id()) + " " +
                    trace.name() + "  total " + HumanNs(trace.duration_ns()) +
                    "\n";
  for (const auto& [k, v] : trace.attrs()) {
    out += "  @" + k + " = " + v + "\n";
  }
  // Depth of each span = 1 + depth of its parent; spans_ is append-ordered
  // so a parent always precedes its children.
  std::vector<int> depth(spans.size(), 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent >= 0 &&
        static_cast<size_t>(spans[i].parent) < i) {
      depth[i] = depth[static_cast<size_t>(spans[i].parent)] + 1;
    }
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    const uint64_t dur = s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
    out += "  ";
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += s.name + "  " + HumanNs(dur);
    if (s.end_ns == 0) out += "  (open)";
    out += "\n";
  }
  return out;
}

std::string TraceRecorder::RenderJson(const Trace& trace) {
  std::string out = "{\"id\": " + std::to_string(trace.id()) + ", \"name\": \"" +
                    JsonEscape(trace.name()) + "\", \"start_unix_micros\": " +
                    std::to_string(trace.start_unix_micros()) +
                    ", \"duration_ns\": " +
                    std::to_string(trace.duration_ns()) + ", \"attrs\": {";
  bool first = true;
  for (const auto& [k, v] : trace.attrs()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
  }
  out += "}, \"spans\": [";
  first = true;
  for (const SpanRecord& s : trace.spans()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + JsonEscape(s.name) +
           "\", \"parent\": " + std::to_string(s.parent) +
           ", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"end_ns\": " + std::to_string(s.end_ns) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace smoqe::telemetry
