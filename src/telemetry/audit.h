/// \file
/// \brief Security audit log (docs/DESIGN.md §8.3): a bounded structured
/// record of every authorization decision the engine makes — query
/// rewrites under a security view, and update scripts accepted or
/// rejected by view authorization, with the human-readable explain string
/// the rejection carried.
///
/// The log answers "who was denied what, and why" after the fact, which
/// the paper's security-view model implies but never materializes: the
/// rewriting module silently guarantees queries never see hidden data,
/// and PR 4's update authorizer rejects with an explanation — this layer
/// keeps those decisions. Invariant (tested differentially): every
/// kPermissionDenied returned by `Smoqe::Update` has exactly one
/// kUpdateReject record whose explain equals the status message.

#ifndef SMOQE_TELEMETRY_AUDIT_H_
#define SMOQE_TELEMETRY_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace smoqe::telemetry {

/// What kind of authorization decision a record captures.
enum class AuditKind {
  kQueryRewrite,  ///< query rewritten under a view (always allowed; the
                  ///< rewrite itself is the enforcement)
  kUpdateAccept,  ///< view-checked update script authorized and applied
  kUpdateReject,  ///< update script rejected; `explain` says why
};

const char* AuditKindName(AuditKind kind);

/// One authorization decision.
struct AuditRecord {
  uint64_t seq = 0;            ///< monotonically increasing, never reused
  int64_t unix_micros = 0;     ///< wall-clock time of the decision
  AuditKind kind = AuditKind::kQueryRewrite;
  std::string view;            ///< security view (≙ role) the caller used
  std::string doc;             ///< document the decision concerned
  uint64_t doc_epoch = 0;      ///< document epoch at decision time
  std::string statement;       ///< the query / update script text
  bool allowed = false;
  std::string explain;         ///< rejection reason ("" when allowed)
  uint64_t trace_id = 0;       ///< trace of the call (0 = untraced)
};

/// Field filter for AuditLog::Query; unset fields match everything.
struct AuditFilter {
  const AuditKind* kind = nullptr;
  const bool* allowed = nullptr;
  std::string view;       ///< "" matches any view
  std::string doc;        ///< "" matches any doc
  uint64_t min_seq = 0;   ///< only records with seq >= min_seq
};

/// \brief Bounded FIFO of audit records. Append is mutex-guarded (audit
/// events are per-call, not per-node, so this is off the hot path);
/// eviction drops the oldest record but `dropped()` and the monotone seq
/// keep the loss visible.
class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 4096);

  /// Stamps seq + time and appends; returns the assigned seq.
  uint64_t Append(AuditRecord record);

  /// Records matching `filter`, oldest first.
  std::vector<AuditRecord> Query(const AuditFilter& filter = {}) const;

  /// Total records ever appended (including evicted ones).
  uint64_t total() const { return next_seq_.load(std::memory_order_relaxed) - 1; }
  /// Records evicted by the capacity bound.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// One record as a JSON object (used by smoqe-stat and tests).
  static std::string RenderJson(const AuditRecord& record);

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<AuditRecord> records_;  // back = newest
};

}  // namespace smoqe::telemetry

#endif  // SMOQE_TELEMETRY_AUDIT_H_
