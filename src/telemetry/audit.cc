#include "src/telemetry/audit.h"

#include <chrono>
#include <cstdio>

namespace smoqe::telemetry {

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kQueryRewrite:
      return "query_rewrite";
    case AuditKind::kUpdateAccept:
      return "update_accept";
    case AuditKind::kUpdateReject:
      return "update_reject";
  }
  return "unknown";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

AuditLog::AuditLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t AuditLog::Append(AuditRecord record) {
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  record.unix_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const uint64_t seq = record.seq;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return seq;
}

std::vector<AuditRecord> AuditLog::Query(const AuditFilter& filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  for (const AuditRecord& r : records_) {
    if (r.seq < filter.min_seq) continue;
    if (filter.kind != nullptr && r.kind != *filter.kind) continue;
    if (filter.allowed != nullptr && r.allowed != *filter.allowed) continue;
    if (!filter.view.empty() && r.view != filter.view) continue;
    if (!filter.doc.empty() && r.doc != filter.doc) continue;
    out.push_back(r);
  }
  return out;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::string AuditLog::RenderJson(const AuditRecord& r) {
  std::string out = "{\"seq\": " + std::to_string(r.seq) +
                    ", \"unix_micros\": " + std::to_string(r.unix_micros) +
                    ", \"kind\": \"" + AuditKindName(r.kind) + "\"" +
                    ", \"view\": \"" + JsonEscape(r.view) + "\"" +
                    ", \"doc\": \"" + JsonEscape(r.doc) + "\"" +
                    ", \"doc_epoch\": " + std::to_string(r.doc_epoch) +
                    ", \"statement\": \"" + JsonEscape(r.statement) + "\"" +
                    ", \"allowed\": " + (r.allowed ? "true" : "false") +
                    ", \"explain\": \"" + JsonEscape(r.explain) + "\"" +
                    ", \"trace_id\": " + std::to_string(r.trace_id) + "}";
  return out;
}

}  // namespace smoqe::telemetry
