/// \file
/// \brief The engine-facing telemetry bundle: one object owning the
/// metrics registry, the trace recorder, and the audit log, created by
/// `Smoqe` when `EngineOptions.telemetry` is on (docs/DESIGN.md §8).
///
/// Instrumented code holds a `Telemetry*` that is null when telemetry is
/// off; every helper here (and SpanScope in trace.h) is null-safe, so
/// call sites stay branch-free. The registry/recorder/log are engine-
/// scoped, not process-global, which keeps tests isolated and lets one
/// process run several engines; `MetricsRegistry::Global()` remains for
/// embedders that want cross-engine aggregation.

#ifndef SMOQE_TELEMETRY_TELEMETRY_H_
#define SMOQE_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/telemetry/audit.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profile.h"
#include "src/telemetry/trace.h"

namespace smoqe::telemetry {

/// Knobs of a Telemetry bundle (EngineOptions.telemetry).
struct TelemetryOptions {
  bool enabled = true;
  size_t trace_capacity = 256;   ///< finished traces retained
  size_t audit_capacity = 4096;  ///< audit records retained
  size_t slow_log_capacity = 128;  ///< slow-query profiles retained
                                   ///< (0 disables the slow ring)
  /// Record a trace for every Nth facade call (1 = all). Metrics and
  /// audit records are never sampled — only span recording is.
  uint64_t trace_sample_every = 1;
};

/// \brief One engine's telemetry state. Thread-safe throughout.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options = {})
      : options_(options),
        traces_(options.trace_capacity),
        audit_(options.audit_capacity),
        slow_(options.slow_log_capacity) {}

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  TraceRecorder& traces() { return traces_; }
  const TraceRecorder& traces() const { return traces_; }
  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }
  SlowQueryLog& slow() { return slow_; }
  const SlowQueryLog& slow() const { return slow_; }
  const TelemetryOptions& options() const { return options_; }

  /// Starts a trace for a facade call, honoring the sampling knob; null
  /// when this call is not sampled. Finish with `traces().Finish`.
  std::shared_ptr<Trace> MaybeBeginTrace(std::string name) {
    const uint64_t every = options_.trace_sample_every;
    if (every > 1 &&
        calls_.fetch_add(1, std::memory_order_relaxed) % every != 0) {
      return nullptr;
    }
    return traces_.Begin(std::move(name));
  }

 private:
  const TelemetryOptions options_;
  MetricsRegistry registry_;
  TraceRecorder traces_;
  AuditLog audit_;
  SlowQueryLog slow_;
  std::atomic<uint64_t> calls_{0};
};

}  // namespace smoqe::telemetry

#endif  // SMOQE_TELEMETRY_TELEMETRY_H_
