/// \file
/// \brief Per-call trace spans and the ring-buffer recorder behind them
/// (docs/DESIGN.md §8.2): every `Smoqe::Query` / `QueryBatch` / `Update`
/// gets a trace id and nested timed spans for its pipeline stages
/// (parse → cache_lookup → rewrite → evaluate → materialize, or
/// parse → resolve → authorize → validate → apply → publish), so a slow
/// call can be explained after the fact from the recorder.
///
/// A Trace is shared across the threads of one call (batch items record
/// their spans from pool workers); span append is mutex-guarded — the
/// granularity is pipeline stages, not per-node events, so the lock is
/// nowhere near the hot path.

#ifndef SMOQE_TELEMETRY_TRACE_H_
#define SMOQE_TELEMETRY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace smoqe::telemetry {

/// One finished (or still-open) span: times are nanoseconds relative to
/// the trace's start, `parent` indexes the enclosing span (-1 = root
/// level). Names are short stage labels ("evaluate", "item 3").
struct SpanRecord {
  std::string name;
  int32_t parent = -1;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  ///< 0 while the span is still open
};

/// \brief One call's trace: an id, a span list, and key=value attributes
/// (doc, query, view, status…). Thread-safe; see file comment.
class Trace {
 public:
  Trace(uint64_t id, std::string name);

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Opens a span under `parent` (-1 = top level) and returns its index.
  int32_t BeginSpan(std::string name, int32_t parent = -1);
  void EndSpan(int32_t index);

  /// Appends an already-finished span of known duration, back-dated so
  /// it ends "now" (start saturates at the trace's own start). This is
  /// how work measured *outside* the trace's lifetime — the server's
  /// queue wait before the trace existed, the write flush after the
  /// facade returned — lands in the same parent-ordered span list.
  int32_t AddCompletedSpan(std::string name, uint64_t duration_ns,
                           int32_t parent = -1);

  void SetAttr(const std::string& key, std::string value);

  /// Total duration; stamped by TraceRecorder::Finish (0 until then).
  uint64_t duration_ns() const { return duration_ns_; }
  /// Wall-clock time the trace began (microseconds since the epoch).
  int64_t start_unix_micros() const { return start_unix_micros_; }

  /// Snapshot copies (the trace may still be appended to concurrently).
  std::vector<SpanRecord> spans() const;
  std::vector<std::pair<std::string, std::string>> attrs() const;

 private:
  friend class TraceRecorder;

  uint64_t ElapsedNs() const;

  const uint64_t id_;
  const std::string name_;
  const std::chrono::steady_clock::time_point t0_;
  const int64_t start_unix_micros_;
  uint64_t duration_ns_ = 0;  // written once by Finish, before publication

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

/// RAII span: opens on construction, closes on destruction. A null trace
/// makes every operation a no-op, so call sites need no telemetry-off
/// branches.
class SpanScope {
 public:
  SpanScope(Trace* trace, const char* name, int32_t parent = -1)
      : trace_(trace),
        index_(trace == nullptr ? -1 : trace->BeginSpan(name, parent)) {}
  ~SpanScope() {
    if (trace_ != nullptr) trace_->EndSpan(index_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Index of this span, for nesting children under it (-1 if no trace).
  int32_t index() const { return index_; }

 private:
  Trace* trace_;
  int32_t index_;
};

/// \brief Bounded ring buffer of finished traces with a query API and
/// text / JSON renderers.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 256);

  /// Starts a new trace (fresh id, clock running). The caller records
  /// spans into it and hands it back to Finish.
  std::shared_ptr<Trace> Begin(std::string name);

  /// Starts a trace under a caller-chosen id (the wire trace-context
  /// path: the client minted the id, the server adopts it so client and
  /// server logs correlate). `id == 0` mints a fresh one. Caller-chosen
  /// ids may collide with minted ones — Find returns the newest match,
  /// which is the one the caller just made.
  std::shared_ptr<Trace> Begin(std::string name, uint64_t id);

  /// Stamps the duration and appends to the ring (evicting the oldest
  /// trace when full).
  void Finish(const std::shared_ptr<Trace>& trace);

  /// The most recent `n` finished traces, newest first.
  std::vector<std::shared_ptr<const Trace>> Recent(size_t n) const;
  /// A finished trace by id, or null if evicted / never finished.
  std::shared_ptr<const Trace> Find(uint64_t id) const;
  /// The slowest retained trace (null when empty) — the "explain that
  /// slow query" entry point.
  std::shared_ptr<const Trace> Slowest() const;

  uint64_t finished_count() const {
    return finished_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Indented stage tree with durations, one line per span.
  static std::string RenderText(const Trace& trace);
  /// One JSON object: id, name, duration, attrs, spans.
  static std::string RenderJson(const Trace& trace);

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> finished_{0};
  mutable std::mutex mu_;  // guards ring_
  std::deque<std::shared_ptr<const Trace>> ring_;  // back = newest
};

}  // namespace smoqe::telemetry

#endif  // SMOQE_TELEMETRY_TRACE_H_
