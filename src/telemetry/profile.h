/// \file
/// \brief Per-request profile model (docs/DESIGN.md §11): the structured
/// answer to "where did this request's nanoseconds go". A `Profile` is
/// assembled by the facade when a caller asks for one (`RequestOptions::
/// profile`, or the wire PROFILE flag) and carries the rewritten query's
/// canonical print, plan-cache hit/miss, per-stage span durations,
/// `EvalStats` counters, the doc epoch, and guard ticks. `ProfileRenderer`
/// prints it for humans (text) and machines (JSON; validated by
/// `tools/check_metrics.py profile`).
///
/// `SlowQueryLog` is the bounded ring behind the slow-query surface: the
/// facade appends the profile of every request whose elapsed time crossed
/// `EngineOptions::slow_query_threshold_ms`, tagged with role/view and a
/// monotone sequence number; `smoqe-stat --format slow` and the STAT
/// sub-command drain it.

#ifndef SMOQE_TELEMETRY_PROFILE_H_
#define SMOQE_TELEMETRY_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/counters.h"

namespace smoqe::telemetry {

/// One pipeline stage's share of a request: a flattened copy of the
/// trace's span list (`parent` indexes the enclosing stage, -1 = root).
/// Summing the root stages never exceeds `Profile::total_ns` — nested
/// stages double-count their parents by construction, roots do not.
struct ProfileStage {
  std::string name;
  int32_t parent = -1;
  uint64_t ns = 0;
};

/// Everything the engine knows about one finished request.
struct Profile {
  uint64_t trace_id = 0;        ///< wire trace id, or engine-minted
  std::string op;               ///< "query" | "query_batch" | "update"
  std::string doc;
  std::string view;             ///< security view ("" = direct access)
  std::string statement;        ///< query / update text as submitted
  std::string canonical_query;  ///< normalized print after view rewrite
                                ///< ("" when unavailable, e.g. batches)
  bool plan_cache_hit = false;
  uint64_t doc_epoch = 0;
  uint64_t total_ns = 0;        ///< whole-request wall time (the server
                                ///< re-stamps this to arrival-relative)
  uint64_t guard_ticks = 0;     ///< Guardrail::Check calls this request
  std::vector<ProfileStage> stages;
  EvalStats stats;
};

/// Renders a Profile for humans and for `check_metrics.py profile`.
class ProfileRenderer {
 public:
  /// Indented stage tree plus the counters, one attribute per line.
  static std::string Text(const Profile& profile);
  /// One JSON object; schema pinned by tools/check_metrics.py.
  static std::string Json(const Profile& profile);
};

/// One slow-ring entry: the profile plus capture metadata.
struct SlowQueryEntry {
  uint64_t seq = 0;          ///< monotone, never reused; gaps = drops
  int64_t unix_micros = 0;   ///< wall-clock capture time
  std::string role;          ///< session role (= view; "" → "direct")
  uint64_t threshold_ns = 0; ///< the threshold in force at capture
  Profile profile;
};

/// \brief Bounded FIFO of over-threshold request profiles. Append is
/// mutex-guarded — it fires at most once per request, and only for slow
/// ones, so it is nowhere near the hot path. Eviction drops the oldest
/// entry; `dropped()` and the monotone seq keep the loss visible.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128);

  /// Stamps seq + time and appends; returns the assigned seq.
  /// No-op (returns 0) when the log was built with capacity 0.
  uint64_t Append(Profile profile, std::string role, uint64_t threshold_ns);

  /// Snapshot of retained entries, oldest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Total entries ever appended (including evicted ones).
  uint64_t total() const { return next_seq_.load(std::memory_order_relaxed) - 1; }
  /// Entries evicted by the capacity bound.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  /// The whole ring as one JSON array (oldest first) — the payload of
  /// `STAT format=slow` and `smoqe-stat --format slow`.
  std::string RenderJson() const;

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;  // back = newest
};

}  // namespace smoqe::telemetry

#endif  // SMOQE_TELEMETRY_PROFILE_H_
