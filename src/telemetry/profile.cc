#include "src/telemetry/profile.h"

#include <chrono>
#include <cstdio>

namespace smoqe::telemetry {

namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HumanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof buf, "%.1f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void AppendU64(std::string& out, const char* key, uint64_t v, bool comma) {
  out += "\"";
  out += key;
  out += "\": " + std::to_string(v);
  if (comma) out += ", ";
}

}  // namespace

std::string ProfileRenderer::Text(const Profile& profile) {
  std::string out = "profile #" + std::to_string(profile.trace_id) + " " +
                    profile.op + "  total " + HumanNs(profile.total_ns) + "\n";
  out += "  doc = " + profile.doc + " @epoch " +
         std::to_string(profile.doc_epoch) + "\n";
  out += "  view = " + (profile.view.empty() ? "(direct)" : profile.view) +
         "\n";
  if (!profile.statement.empty()) {
    out += "  statement = " + profile.statement + "\n";
  }
  if (!profile.canonical_query.empty()) {
    out += "  canonical = " + profile.canonical_query + "\n";
  }
  out += std::string("  plan_cache = ") +
         (profile.plan_cache_hit ? "hit" : "miss") + "\n";
  out += "  guard_ticks = " + std::to_string(profile.guard_ticks) + "\n";
  // Same depth rule as TraceRecorder::RenderText: stages are
  // append-ordered, so a parent always precedes its children.
  std::vector<int> depth(profile.stages.size(), 0);
  for (size_t i = 0; i < profile.stages.size(); ++i) {
    if (profile.stages[i].parent >= 0 &&
        static_cast<size_t>(profile.stages[i].parent) < i) {
      depth[i] = depth[static_cast<size_t>(profile.stages[i].parent)] + 1;
    }
  }
  for (size_t i = 0; i < profile.stages.size(); ++i) {
    out += "  ";
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += profile.stages[i].name + "  " + HumanNs(profile.stages[i].ns) +
           "\n";
  }
  out += "  stats: nodes_visited=" + std::to_string(profile.stats.nodes_visited) +
         " answers=" + std::to_string(profile.stats.answers) +
         " cans=" + std::to_string(profile.stats.cans_entries) +
         " max_active_pairs=" + std::to_string(profile.stats.max_active_pairs) +
         "\n";
  return out;
}

std::string ProfileRenderer::Json(const Profile& profile) {
  std::string out = "{";
  AppendU64(out, "trace_id", profile.trace_id, true);
  out += "\"op\": \"" + JsonEscape(profile.op) + "\", ";
  out += "\"doc\": \"" + JsonEscape(profile.doc) + "\", ";
  out += "\"view\": \"" + JsonEscape(profile.view) + "\", ";
  out += "\"statement\": \"" + JsonEscape(profile.statement) + "\", ";
  out += "\"canonical_query\": \"" + JsonEscape(profile.canonical_query) +
         "\", ";
  out += std::string("\"plan_cache_hit\": ") +
         (profile.plan_cache_hit ? "true" : "false") + ", ";
  AppendU64(out, "doc_epoch", profile.doc_epoch, true);
  AppendU64(out, "total_ns", profile.total_ns, true);
  AppendU64(out, "guard_ticks", profile.guard_ticks, true);
  out += "\"stages\": [";
  bool first = true;
  for (const ProfileStage& s : profile.stages) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + JsonEscape(s.name) +
           "\", \"parent\": " + std::to_string(s.parent) + ", ";
    AppendU64(out, "ns", s.ns, false);
    out += "}";
  }
  out += "], \"stats\": {";
  const EvalStats& st = profile.stats;
  AppendU64(out, "nodes_visited", st.nodes_visited, true);
  AppendU64(out, "answers", st.answers, true);
  AppendU64(out, "cans_entries", st.cans_entries, true);
  AppendU64(out, "pred_instances", st.pred_instances, true);
  AppendU64(out, "max_active_pairs", st.max_active_pairs, true);
  AppendU64(out, "buffered_bytes", st.buffered_bytes, true);
  AppendU64(out, "plan_cache_hits", st.plan_cache_hits, true);
  AppendU64(out, "plan_cache_misses", st.plan_cache_misses, true);
  AppendU64(out, "batch_plans", st.batch_plans, false);
  out += "}}";
  return out;
}

SlowQueryLog::SlowQueryLog(size_t capacity) : capacity_(capacity) {}

uint64_t SlowQueryLog::Append(Profile profile, std::string role,
                              uint64_t threshold_ns) {
  if (capacity_ == 0) return 0;
  SlowQueryEntry entry;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.unix_micros = NowUnixMicros();
  entry.role = std::move(role);
  entry.threshold_ns = threshold_ns;
  entry.profile = std::move(profile);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return entries_.back().seq;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryEntry>(entries_.begin(), entries_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string SlowQueryLog::RenderJson() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::string out = "[";
  bool first = true;
  for (const SlowQueryEntry& e : entries) {
    if (!first) out += ",\n ";
    first = false;
    out += "{";
    AppendU64(out, "seq", e.seq, true);
    out += "\"unix_micros\": " + std::to_string(e.unix_micros) + ", ";
    out += "\"role\": \"" + JsonEscape(e.role) + "\", ";
    AppendU64(out, "threshold_ns", e.threshold_ns, true);
    out += "\"profile\": " + ProfileRenderer::Json(e.profile);
    out += "}";
  }
  out += "]\n";
  return out;
}

}  // namespace smoqe::telemetry
