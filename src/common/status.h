#ifndef SMOQE_COMMON_STATUS_H_
#define SMOQE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace smoqe {

/// Error category for a failed operation. Mirrors the coarse-grained codes
/// used by RocksDB/Arrow style status objects; the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed (bad query string…)
  kParseError,        ///< input document/DTD/policy text failed to parse
  kNotFound,          ///< named entity (view, document, type) is unknown
  kAlreadyExists,     ///< catalog name collision
  kFailedPrecondition,///< operation not valid in current engine state
  kResourceExhausted, ///< explicit size/recursion caps exceeded
  kIOError,           ///< filesystem problem while persisting/loading an index
  kInternal,          ///< invariant violation inside the engine (a bug)
  kPermissionDenied,  ///< update rejected by the access-control policy
  kDeadlineExceeded,  ///< per-request deadline expired before completion
  kCancelled,         ///< request cancelled via its CancelToken
  kRejectedBusy,      ///< admission control: engine at max pending requests
};

/// \brief Result of an operation that can fail; the library never throws.
///
/// A `Status` is cheap to copy when OK (single word); error states allocate
/// one string. Functions that produce a value use `Result<T>` below.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status RejectedBusy(std::string msg) {
    return Status(StatusCode::kRejectedBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected '<' at line 3".
  std::string ToString() const;

  /// Prefixes the error message with `context` (no-op on OK statuses);
  /// used to add caller-side context while propagating.
  Status WithContext(std::string_view context) const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error holder, analogous to `arrow::Result<T>`.
///
/// Use `ok()` / `status()` to test, `value()` (asserting) or `operator*`
/// to access. Move-only usage patterns are supported via `MoveValue()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& value() {
    assert(ok());
    return *value_;
  }
  /// Moves the value out; the Result must be OK.
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

/// Propagates a non-OK Status from an expression returning Status.
#define SMOQE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::smoqe::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates an expression returning Result<T>; on error returns its status,
/// otherwise assigns the moved value to `lhs` (which must be declarable).
#define SMOQE_ASSIGN_OR_RETURN(lhs, expr)      \
  SMOQE_ASSIGN_OR_RETURN_IMPL(                 \
      SMOQE_CONCAT(_smoqe_result_, __LINE__), lhs, expr)

#define SMOQE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.MoveValue();

#define SMOQE_CONCAT_IMPL(a, b) a##b
#define SMOQE_CONCAT(a, b) SMOQE_CONCAT_IMPL(a, b)

}  // namespace smoqe

#endif  // SMOQE_COMMON_STATUS_H_
