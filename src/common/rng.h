#ifndef SMOQE_COMMON_RNG_H_
#define SMOQE_COMMON_RNG_H_

#include <cstdint>

namespace smoqe {

/// \brief Deterministic xorshift64* generator.
///
/// Used by the document generator and property tests so every run is
/// reproducible from a seed; we deliberately avoid std::mt19937 to keep
/// streams identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_RNG_H_
