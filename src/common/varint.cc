#include "src/common/varint.h"

namespace smoqe {

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint64(std::string_view* in) {
  uint64_t result = 0;
  int shift = 0;
  for (size_t i = 0; i < in->size() && i < 10; ++i) {
    uint8_t byte = static_cast<uint8_t>((*in)[i]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      in->remove_prefix(i + 1);
      return result;
    }
    shift += 7;
  }
  return Status::ParseError("truncated or overlong varint");
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> GetLengthPrefixed(std::string_view* in) {
  SMOQE_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(in));
  if (len > in->size()) {
    return Status::ParseError("truncated length-prefixed string");
  }
  std::string s(in->substr(0, len));
  in->remove_prefix(len);
  return s;
}

}  // namespace smoqe
