/// \file
/// \brief Work-stealing thread pool backing the parallel query-serving
/// layer (docs/DESIGN.md §7): `Smoqe::QueryBatch` fans DOM items and
/// per-plan StAX advancement across it, and bench_parallel (E13) sweeps
/// its size.

#ifndef SMOQE_COMMON_THREAD_POOL_H_
#define SMOQE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/telemetry/metrics.h"

namespace smoqe {

/// \brief Countdown latch for fork/join sections (C++17 has no
/// std::latch). CountDown may be called from any thread; Wait blocks the
/// caller until the count reaches zero. The count is mutex-guarded (not a
/// lock-free fast path) so that once Wait returns, no CountDown caller
/// can still be touching the latch — a stack-allocated Latch may be
/// destroyed immediately after Wait.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Non-blocking: true iff the count has reached zero. For waiters that
  /// must keep draining a pool instead of blocking (ThreadPool::
  /// HelpWhileWaiting) — a blocked wait whose tasks sit in a queue
  /// behind the waiter is a deadlock.
  bool TryWait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  size_t count_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// \brief Work-stealing thread pool.
///
/// `threads` is the total parallelism including the calling thread, so a
/// pool built with `threads == 1` spawns no workers and runs everything
/// inline — the serial fallback needs no special casing. Each worker owns
/// a deque: submissions land round-robin, a worker pops its own deque
/// LIFO (cache-warm), and an idle worker steals FIFO from the others
/// (oldest task first, the classic Blumofe–Leiserson discipline).
///
/// ParallelFor is the fork/join primitive the engine uses: the calling
/// thread *participates* in the loop, so nested ParallelFor from inside a
/// task can never deadlock — a saturated pool degrades to the caller
/// draining its own iterations inline.
class ThreadPool {
 public:
  /// `threads` = total parallelism (callers + workers). 0 means one per
  /// hardware core (`std::thread::hardware_concurrency`).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker threads + the calling thread.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues `fn` for asynchronous execution. With no workers the call
  /// runs `fn` inline before returning.
  void Submit(std::function<void()> fn);

  /// Runs `body(i)` for every i in [0, n), distributing iterations across
  /// the workers via a shared claim counter; the calling thread helps.
  /// Returns when every iteration has finished. `body` must be safe to
  /// call concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Blocks until `latch` opens, executing queued pool tasks on the
  /// calling thread in the meantime. The fork side of a fork/join that
  /// *submitted* its work (rather than using ParallelFor) must wait this
  /// way: a join that merely blocks can deadlock when every worker is
  /// itself blocked in a join and the forked tasks sit unclaimed in the
  /// queues — helping guarantees the waiter's own work cannot starve.
  void HelpWhileWaiting(Latch& latch);

  /// Process-wide default pool (hardware-sized), for callers without a
  /// configured engine.
  static ThreadPool& Shared();

  /// Lifetime totals, always collected (relaxed atomics — approximate
  /// cross-counter consistency, exact totals once the pool is quiescent).
  struct Stats {
    uint64_t submitted = 0;  ///< tasks handed to Submit (incl. inline runs)
    uint64_t executed = 0;   ///< tasks that have finished running
    uint64_t steals = 0;     ///< pops from another worker's deque
  };
  Stats stats() const {
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    return s;
  }

  /// Tasks submitted but not yet started (queue depth). The facade's
  /// admission gate reads this as its saturation signal; approximate by
  /// nature (relaxed), which is fine for a load-shedding heuristic.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

  /// Mirrors pool activity into `registry` from now on (docs/DESIGN.md
  /// §8.4): counters `pool.tasks_submitted` / `pool.tasks_executed` /
  /// `pool.steals`, gauge `pool.queue_depth`, histogram
  /// `pool.task_wait_ns` (Submit-to-pop latency; tasks submitted before
  /// attachment carry no timestamp and are not recorded). Safe to call
  /// while the pool is running; nullptr detaches.
  void AttachTelemetry(telemetry::MetricsRegistry* registry);

 private:
  struct Task {
    std::function<void()> fn;
    /// Enqueue time; only stamped (and only read) when the wait-latency
    /// histogram was attached at submit time.
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  struct WorkQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops one task — own deque back first, then steals another queue's
  /// front. Returns false when every deque is empty.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
  // Attached-registry metrics; release-stored by AttachTelemetry,
  // acquire-loaded on use so a worker that sees the pointer also sees the
  // metric object it points at.
  std::atomic<telemetry::Counter*> tm_submitted_{nullptr};
  std::atomic<telemetry::Counter*> tm_executed_{nullptr};
  std::atomic<telemetry::Counter*> tm_steals_{nullptr};
  std::atomic<telemetry::Gauge*> tm_queue_depth_{nullptr};
  std::atomic<telemetry::Histogram*> tm_task_wait_ns_{nullptr};
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_THREAD_POOL_H_
