/// \file
/// \brief Work-stealing thread pool backing the parallel query-serving
/// layer (docs/DESIGN.md §7): `Smoqe::QueryBatch` fans DOM items and
/// per-plan StAX advancement across it, and bench_parallel (E13) sweeps
/// its size.

#ifndef SMOQE_COMMON_THREAD_POOL_H_
#define SMOQE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smoqe {

/// \brief Countdown latch for fork/join sections (C++17 has no
/// std::latch). CountDown may be called from any thread; Wait blocks the
/// caller until the count reaches zero. The count is mutex-guarded (not a
/// lock-free fast path) so that once Wait returns, no CountDown caller
/// can still be touching the latch — a stack-allocated Latch may be
/// destroyed immediately after Wait.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Non-blocking: true iff the count has reached zero. For waiters that
  /// must keep draining a pool instead of blocking (ThreadPool::
  /// HelpWhileWaiting) — a blocked wait whose tasks sit in a queue
  /// behind the waiter is a deadlock.
  bool TryWait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  size_t count_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// \brief Work-stealing thread pool.
///
/// `threads` is the total parallelism including the calling thread, so a
/// pool built with `threads == 1` spawns no workers and runs everything
/// inline — the serial fallback needs no special casing. Each worker owns
/// a deque: submissions land round-robin, a worker pops its own deque
/// LIFO (cache-warm), and an idle worker steals FIFO from the others
/// (oldest task first, the classic Blumofe–Leiserson discipline).
///
/// ParallelFor is the fork/join primitive the engine uses: the calling
/// thread *participates* in the loop, so nested ParallelFor from inside a
/// task can never deadlock — a saturated pool degrades to the caller
/// draining its own iterations inline.
class ThreadPool {
 public:
  /// `threads` = total parallelism (callers + workers). 0 means one per
  /// hardware core (`std::thread::hardware_concurrency`).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker threads + the calling thread.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues `fn` for asynchronous execution. With no workers the call
  /// runs `fn` inline before returning.
  void Submit(std::function<void()> fn);

  /// Runs `body(i)` for every i in [0, n), distributing iterations across
  /// the workers via a shared claim counter; the calling thread helps.
  /// Returns when every iteration has finished. `body` must be safe to
  /// call concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Blocks until `latch` opens, executing queued pool tasks on the
  /// calling thread in the meantime. The fork side of a fork/join that
  /// *submitted* its work (rather than using ParallelFor) must wait this
  /// way: a join that merely blocks can deadlock when every worker is
  /// itself blocked in a join and the forked tasks sit unclaimed in the
  /// queues — helping guarantees the waiter's own work cannot starve.
  void HelpWhileWaiting(Latch& latch);

  /// Process-wide default pool (hardware-sized), for callers without a
  /// configured engine.
  static ThreadPool& Shared();

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops one task — own deque back first, then steals another queue's
  /// front. Returns false when every deque is empty.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_THREAD_POOL_H_
