#include "src/common/bitset.h"

#include <cassert>

namespace smoqe {

void DynamicBitset::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] |= (uint64_t{1} << (i % 64));
}

void DynamicBitset::Reset(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool DynamicBitset::Test(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void DynamicBitset::Clear() {
  for (auto& w : words_) w = 0;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void DynamicBitset::UnionWithZeroExt(const DynamicBitset& other) {
  assert(other.num_bits_ <= num_bits_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
}

bool DynamicBitset::SameBits(const DynamicBitset& other) const {
  const size_t common = words_.size() < other.words_.size()
                            ? words_.size()
                            : other.words_.size();
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] != other.words_[i]) return false;
  }
  for (size_t i = common; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  for (size_t i = common; i < other.words_.size(); ++i) {
    if (other.words_[i] != 0) return false;
  }
  return true;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

}  // namespace smoqe
