#include "src/common/status.h"

namespace smoqe {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kRejectedBusy:
      return "RejectedBusy";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace smoqe
