#ifndef SMOQE_COMMON_BITSET_H_
#define SMOQE_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smoqe {

/// \brief Fixed-width-at-construction bit vector used for TAX type sets and
/// NFA state sets.
///
/// All set-algebra operations require operands of equal width; this is
/// asserted in debug builds. The word layout is little-endian within the
/// `uint64_t` vector so the on-disk TAX format is deterministic.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Sets all bits to zero.
  void Clear();

  /// True iff no bit is set.
  bool None() const;
  /// True iff at least one bit is set.
  bool Any() const { return !None(); }
  /// Number of set bits.
  size_t Count() const;

  /// this |= other (widths must match).
  void UnionWith(const DynamicBitset& other);
  /// this |= zero-extend(other): `other` may be narrower (never wider).
  /// Used where widths legitimately diverge — TAX sets built before a
  /// name-table growth unioned into sets built after it.
  void UnionWithZeroExt(const DynamicBitset& other);
  /// True iff the two sets contain the same bits, treating the narrower
  /// one as zero-extended (width-insensitive ==).
  bool SameBits(const DynamicBitset& other) const;
  /// this &= other (widths must match).
  void IntersectWith(const DynamicBitset& other);
  /// True iff this ∩ other ≠ ∅ (widths must match).
  bool Intersects(const DynamicBitset& other) const;
  /// True iff this ⊆ other (widths must match).
  bool IsSubsetOf(const DynamicBitset& other) const;

  bool operator==(const DynamicBitset& other) const;

  /// Raw word access for serialization.
  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

  /// Calls `fn(i)` for every set bit i in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_BITSET_H_
