#ifndef SMOQE_COMMON_GUARDRAIL_H_
#define SMOQE_COMMON_GUARDRAIL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace smoqe {

/// \file
/// Per-request resource governance (DESIGN.md §9): a steady-clock
/// `Deadline`, a caller-owned `CancelToken`, a `MemoryBudget` charged by
/// the arena and by run/capture allocations, and the `Guardrail` bundle
/// the evaluator drivers poll cooperatively. A separate process-wide
/// `FaultInjector` lets tests force deterministic failures at named
/// sites; it compiles to a no-op under `-DSMOQE_FAULT_INJECTION=OFF`.

namespace fault {

/// Process-wide deterministic fault injector. Tests arm a named site
/// ("stax.read", "update.apply", …) to fire on its k-th hit; the k-th
/// call of `At(site)` then returns true exactly once. Sites are string
/// literals compared by content, so callers need no registration.
///
/// Thread-safe: hit counters are atomic, and Arm/Reset are test-side
/// setup calls (not raced against evaluation in practice, but safe).
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `site` to fire on its `k`-th hit (1-based). Re-arming
  /// replaces the previous trigger and zeroes the hit count.
  void Arm(const std::string& site, uint64_t k);

  /// Derives k deterministically from (site, seed) in [1, max_k] —
  /// lets matrix tests sweep seeds without hand-picking hit counts.
  void ArmSeeded(const std::string& site, uint64_t seed, uint64_t max_k);

  /// Disarms every site and zeroes all counters.
  void Reset();

  /// Counts a hit at `site`; true iff this is the armed k-th hit.
  bool At(const std::string& site);

  /// Total hits recorded at `site` since the last Reset/Arm.
  uint64_t Hits(const std::string& site) const;

 private:
  FaultInjector() = default;
  struct Site;
  Site* Find(const std::string& site) const;

  static constexpr int kMaxSites = 16;
  struct Site {
    std::string name;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fire_at{0};  // 0 = disarmed
  };
  mutable std::atomic<int> num_sites_{0};
  mutable Site sites_[kMaxSites];
};

#ifdef SMOQE_FAULT_INJECTION
/// True iff the named site is armed and this is its k-th hit. In
/// production builds (-DSMOQE_FAULT_INJECTION=OFF) this is a constant
/// false the compiler deletes along with the surrounding branch.
inline bool At(const char* site) { return FaultInjector::Instance().At(site); }
#else
inline constexpr bool At(const char*) { return false; }
#endif

}  // namespace fault

/// Absolute point in time after which a request must stop. Steady clock,
/// so wall-clock adjustments cannot extend or shorten a request.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// The default deadline never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  /// A deadline `ms` milliseconds from now; `ms == 0` means no deadline.
  static Deadline After(uint64_t ms) {
    Deadline d;
    // Saturate: a deadline past ~10 years is indistinguishable from
    // unlimited, and u64 garbage (e.g. a hostile wire value) must not
    // overflow the clock's signed nanosecond representation.
    constexpr uint64_t kMaxMs = 10ull * 365 * 24 * 3600 * 1000;
    if (ms != 0 && ms <= kMaxMs) {
      d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool unlimited() const { return at_ == Clock::time_point::max(); }

  /// One clock read; ~20ns. Callers amortize via GuardTicker.
  bool Expired() const { return !unlimited() && Clock::now() >= at_; }

  Clock::time_point at() const { return at_; }

 private:
  Clock::time_point at_;
};

/// Caller-owned cooperative cancellation flag. The requester keeps the
/// token and calls `Cancel()` from any thread; the evaluator polls
/// `cancelled()` at its event loop. Relaxed ordering is enough — the
/// flag carries no payload, and the unwind path synchronizes via the
/// Status return.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-request memory ceiling. Charged from several threads at once in
/// parallel batch evaluation, hence the atomics; `Charge` is the only
/// hot operation. Once exceeded the budget stays exceeded — a request
/// over budget unwinds, it does not recover by freeing.
class MemoryBudget {
 public:
  /// `limit == 0` means unlimited (accounting still runs).
  explicit MemoryBudget(uint64_t limit = 0) : limit_(limit) {}

  /// Adds `bytes` to the running total. Returns false — permanently
  /// marking the budget exceeded — once the total passes the limit.
  bool Charge(uint64_t bytes) {
    uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ != 0 && now > limit_) {
      exceeded_.store(true, std::memory_order_relaxed);
      return false;
    }
    return !exceeded_.load(std::memory_order_relaxed);
  }

  bool exceeded() const {
    return exceeded_.load(std::memory_order_relaxed);
  }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }

  /// Fault-injection hook: trips the budget as if an allocation failed.
  void ForceExceed() { exceeded_.store(true, std::memory_order_relaxed); }

  /// Re-targets the budget for a new request (facade setup, before any
  /// concurrent charging starts — not thread-safe against Charge).
  void Reset(uint64_t limit) {
    limit_ = limit;
    used_.store(0, std::memory_order_relaxed);
    exceeded_.store(false, std::memory_order_relaxed);
  }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<bool> exceeded_{false};
};

/// The per-request bundle threaded through the execution stack. Stack
/// allocated in the facade; evaluator drivers receive a `const
/// Guardrail*` (null = ungoverned, e.g. internal target resolution) and
/// poll `Check()` via a GuardTicker.
///
/// Fail-closed contract: a non-OK `Check()` unwinds the whole request
/// with that status — never a partial answer — and `Update` aborts
/// before `Publish` so the snapshot chain is untouched.
class Guardrail {
 public:
  Guardrail() = default;
  Guardrail(Deadline deadline, const CancelToken* cancel, MemoryBudget* budget)
      : deadline_(deadline), cancel_(cancel), budget_(budget) {}

  // Copying re-targets a guard at a new request (the facade reuses one
  // stack slot per call); the tick tally belongs to the request, so it
  // restarts at zero rather than following the configuration.
  Guardrail(const Guardrail& o)
      : deadline_(o.deadline_), cancel_(o.cancel_), budget_(o.budget_) {}
  Guardrail& operator=(const Guardrail& o) {
    deadline_ = o.deadline_;
    cancel_ = o.cancel_;
    budget_ = o.budget_;
    checks_.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Full check (one clock read when a deadline is set). Order matters
  /// for determinism in tests: cancellation, then budget, then deadline.
  Status Check() const {
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("request cancelled");
    }
    if (budget_ != nullptr && budget_->exceeded()) {
      return Status::ResourceExhausted(
          "memory budget exceeded (" + std::to_string(budget_->used()) +
          " bytes charged, limit " + std::to_string(budget_->limit()) + ")");
    }
    if (deadline_.Expired()) {
      return Status::DeadlineExceeded("request deadline expired");
    }
    return Status::OK();
  }

  /// Charges the budget without failing; the next Check() reports the
  /// overflow. Null-safe so drivers can charge unconditionally. The
  /// "engine.alloc" fault site models an allocation failure during run
  /// expansion: it trips the budget exactly as a real overflow would.
  void ChargeBytes(uint64_t bytes) const {
    if (budget_ == nullptr) return;
    if (fault::At("engine.alloc")) budget_->ForceExceed();
    if (bytes != 0) budget_->Charge(bytes);
  }

  const Deadline& deadline() const { return deadline_; }
  MemoryBudget* budget() const { return budget_; }

  /// How many times Check() ran for this request — the "guard ticks"
  /// figure a PROFILE reports, proving the amortized polling actually
  /// polled (GuardTicker makes this ~events/256, not ~events).
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

 private:
  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  // Counted in const Check(): the guardrail is logically immutable, the
  // tally is observability. Relaxed — it is read after the request ends.
  mutable std::atomic<uint64_t> checks_{0};
};

/// Amortizes Guardrail::Check over an event loop: a null-guard fast
/// path plus a countdown so the clock is read once every `period`
/// events (~256 by default: at ~10M events/s that is one clock read
/// every ~25µs, keeping overhead well under the 2% budget while
/// bounding deadline-detection latency far below the +20ms slack).
class GuardTicker {
 public:
  explicit GuardTicker(const Guardrail* guard, uint32_t period = 256)
      : guard_(guard), period_(period), left_(period) {}

  /// Returns non-OK when the guard has tripped; call at every loop
  /// iteration. Cheap: a pointer test and a decrement on the fast path.
  Status Tick() {
    if (!Due()) return Status::OK();
    return guard_->Check();
  }

  /// Counts one event; true every `period`-th event (and never for a
  /// null guard). Lets drivers amortize budget flushes under the same
  /// countdown as the clock read:
  ///   if (ticker.Due()) { guard->ChargeBytes(...); RETURN_IF(ticker.Now()) }
  bool Due() {
    if (guard_ == nullptr) return false;
    if (--left_ != 0) return false;
    left_ = period_;
    return true;
  }

  /// Immediate (non-amortized) check; use at phase boundaries.
  Status Now() const {
    return guard_ == nullptr ? Status::OK() : guard_->Check();
  }

  const Guardrail* guard() const { return guard_; }

 private:
  const Guardrail* guard_;
  uint32_t period_;
  uint32_t left_;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_GUARDRAIL_H_
