#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/guardrail.h"

namespace smoqe {

ThreadPool::ThreadPool(int threads) {
  int total = threads > 0
                  ? threads
                  : static_cast<int>(std::thread::hardware_concurrency());
  if (total < 1) total = 1;
  const size_t workers = static_cast<size_t>(total - 1);
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::AttachTelemetry(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tm_task_wait_ns_.store(nullptr, std::memory_order_release);
    tm_queue_depth_.store(nullptr, std::memory_order_release);
    tm_steals_.store(nullptr, std::memory_order_release);
    tm_executed_.store(nullptr, std::memory_order_release);
    tm_submitted_.store(nullptr, std::memory_order_release);
    return;
  }
  tm_submitted_.store(&registry->GetCounter("pool.tasks_submitted"),
                      std::memory_order_release);
  tm_executed_.store(&registry->GetCounter("pool.tasks_executed"),
                     std::memory_order_release);
  tm_steals_.store(&registry->GetCounter("pool.steals"),
                   std::memory_order_release);
  tm_queue_depth_.store(&registry->GetGauge("pool.queue_depth"),
                        std::memory_order_release);
  tm_task_wait_ns_.store(&registry->GetHistogram("pool.task_wait_ns"),
                         std::memory_order_release);
}

void ThreadPool::Submit(std::function<void()> fn) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = tm_submitted_.load(std::memory_order_acquire)) c->Add();
  if (workers_.empty()) {
    fn();  // no workers: degenerate pool runs inline
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = tm_executed_.load(std::memory_order_acquire)) c->Add();
    return;
  }
  Task task;
  task.fn = std::move(fn);
  if (tm_task_wait_ns_.load(std::memory_order_acquire) != nullptr) {
    task.enqueued = std::chrono::steady_clock::now();
    task.timed = true;
  }
  const size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  if (auto* g = tm_queue_depth_.load(std::memory_order_acquire)) g->Add(1);
  {
    // The increment must happen under wake_mu_ (like stop_ in the
    // destructor): a worker that just evaluated the wait predicate as
    // false but has not yet blocked would otherwise miss the notify and
    // sleep over a queued task.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  const size_t k = queues_.size();
  for (size_t probe = 0; probe < k; ++probe) {
    const size_t q = (self + probe) % k;
    Task task;
    {
      std::lock_guard<std::mutex> lock(queues_[q]->mu);
      if (queues_[q]->tasks.empty()) continue;
      if (probe == 0) {
        task = std::move(queues_[q]->tasks.back());  // own queue: LIFO
        queues_[q]->tasks.pop_back();
      } else {
        task = std::move(queues_[q]->tasks.front());  // steal: FIFO
        queues_[q]->tasks.pop_front();
      }
    }
    if (probe != 0) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (auto* c = tm_steals_.load(std::memory_order_acquire)) c->Add();
    }
    if (auto* g = tm_queue_depth_.load(std::memory_order_acquire)) g->Add(-1);
    if (task.timed) {
      if (auto* h = tm_task_wait_ns_.load(std::memory_order_acquire)) {
        const auto wait = std::chrono::steady_clock::now() - task.enqueued;
        h->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wait)
                .count()));
      }
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    // Fault site: a worker that claimed a task but stalls before running
    // it — models a descheduled/oversubscribed worker. Callers must
    // still complete correctly (fork/join waits, deadlines trip).
    if (fault::At("pool.task")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    task.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = tm_executed_.load(std::memory_order_acquire)) c->Add();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

namespace {

/// Shared claim-counter state of one ParallelFor. Heap-held so helper
/// tasks left in a queue after completion (a saturated pool) touch valid
/// memory when they finally run and find no iterations left.
struct ForJob {
  const std::function<void(size_t)>* body;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void DrainFor(const std::shared_ptr<ForJob>& job) {
  while (true) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    (*job->body)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->n) {
      std::lock_guard<std::mutex> lock(job->mu);
      job->cv.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto job = std::make_shared<ForJob>();
  job->body = &body;
  job->n = n;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([job] { DrainFor(job); });
  }
  DrainFor(job);  // the caller participates — nesting cannot deadlock
  if (job->done.load(std::memory_order_acquire) != n) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == n;
    });
  }
}

void ThreadPool::HelpWhileWaiting(Latch& latch) {
  while (!latch.TryWait()) {
    // Start probing at queue 0: external helpers have no own queue, so
    // every pop is a steal; RunOneTask's FIFO steal order applies.
    if (!RunOneTask(0)) std::this_thread::yield();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace smoqe
