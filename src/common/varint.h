#ifndef SMOQE_COMMON_VARINT_H_
#define SMOQE_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace smoqe {

/// Appends `v` to `out` in LEB128 (7 bits per byte, high bit = continue).
void PutVarint64(std::string* out, uint64_t v);

/// Reads a varint from the front of `*in`, advancing it past the bytes read.
/// Fails on truncated input or encodings longer than 10 bytes.
Result<uint64_t> GetVarint64(std::string_view* in);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view s);

/// Reads a length-prefixed string, advancing `*in`.
Result<std::string> GetLengthPrefixed(std::string_view* in);

}  // namespace smoqe

#endif  // SMOQE_COMMON_VARINT_H_
