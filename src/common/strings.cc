#include "src/common/strings.h"

#include <cctype>

namespace smoqe {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

bool IsValidXmlName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace smoqe
