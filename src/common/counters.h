#ifndef SMOQE_COMMON_COUNTERS_H_
#define SMOQE_COMMON_COUNTERS_H_

#include <cstdint>
#include <string>

namespace smoqe {

/// \brief Instrumentation counters filled in by the evaluator and indexer.
///
/// These back the paper's iSMOQE displays (nodes visited / pruned / put in
/// Cans) and the benchmark tables; collecting them is cheap (plain
/// increments, no atomics — engines are single-threaded per query).
struct EvalStats {
  uint64_t nodes_visited = 0;      ///< element nodes entered by the traversal
  uint64_t subtrees_pruned = 0;    ///< subtrees skipped by the TAX prune test
  uint64_t nodes_pruned = 0;       ///< nodes inside pruned subtrees (if known)
  uint64_t cans_entries = 0;       ///< candidate answers staged in Cans
  uint64_t answers = 0;            ///< final answer count
  uint64_t pred_instances = 0;     ///< predicate instances created
  uint64_t obligations = 0;        ///< path-obligation runner pairs created
  uint64_t max_active_pairs = 0;   ///< peak (state, guard) pairs on one node
  uint64_t tree_passes = 0;        ///< full document traversals performed
  uint64_t aux_passes = 0;         ///< passes over auxiliary structures (Cans)
  uint64_t buffered_bytes = 0;     ///< StAX mode: bytes buffered for answers

  // Hot-path machinery (E10 ablation: label dispatch, guard interning,
  // hashed run dedup).
  uint64_t dispatch_label_hits = 0;     ///< transitions found via label spans
  uint64_t dispatch_wildcard_hits = 0;  ///< transitions via the wildcard list
  uint64_t dispatch_scan_steps = 0;     ///< transitions scanned linearly
                                        ///< (label_dispatch off)
  uint64_t guard_pool_entries = 0;      ///< guard-pool entries at finish
                                        ///< (interning on: distinct sets)
  uint64_t guard_pool_hits = 0;         ///< interning lookups that reused a set
  uint64_t guard_pool_misses = 0;       ///< lookups that allocated a new set
  uint64_t run_dedup_probes = 0;        ///< hashed-dedup bucket probes
  uint64_t runs_deduped = 0;            ///< runs rejected as dominated/duplicate

  // Service layer (plan cache + batch evaluation, DESIGN.md §5).
  uint64_t plan_cache_hits = 0;    ///< compile served from the plan cache
  uint64_t plan_cache_misses = 0;  ///< compiled fresh (then cached)
  uint64_t batch_plans = 0;        ///< plans co-evaluated on this StAX scan
                                   ///< (1 = single-query streaming; 0 = not
                                   ///< a streaming evaluation)

  void Reset() { *this = EvalStats(); }

  /// Folds another evaluation's stats into this one, making `this` the
  /// batch-level aggregate: additive counters sum; the two peak values
  /// (`max_active_pairs`, and `buffered_bytes`, which reports a shared
  /// capture footprint in batch mode) take the max. Used by
  /// `Smoqe::QueryBatch` so batch stats equal the sum of per-plan stats
  /// regardless of serial vs parallel execution.
  void MergeFrom(const EvalStats& other);

  /// One-line rendering for examples and debugging.
  std::string ToString() const;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_COUNTERS_H_
