#include "src/common/counters.h"

#include <algorithm>

namespace smoqe {

void EvalStats::MergeFrom(const EvalStats& other) {
  nodes_visited += other.nodes_visited;
  subtrees_pruned += other.subtrees_pruned;
  nodes_pruned += other.nodes_pruned;
  cans_entries += other.cans_entries;
  answers += other.answers;
  pred_instances += other.pred_instances;
  obligations += other.obligations;
  max_active_pairs = std::max(max_active_pairs, other.max_active_pairs);
  tree_passes += other.tree_passes;
  aux_passes += other.aux_passes;
  buffered_bytes = std::max(buffered_bytes, other.buffered_bytes);
  dispatch_label_hits += other.dispatch_label_hits;
  dispatch_wildcard_hits += other.dispatch_wildcard_hits;
  dispatch_scan_steps += other.dispatch_scan_steps;
  guard_pool_entries += other.guard_pool_entries;
  guard_pool_hits += other.guard_pool_hits;
  guard_pool_misses += other.guard_pool_misses;
  run_dedup_probes += other.run_dedup_probes;
  runs_deduped += other.runs_deduped;
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  batch_plans += other.batch_plans;
}

std::string EvalStats::ToString() const {
  std::string s;
  s += "visited=" + std::to_string(nodes_visited);
  s += " pruned_subtrees=" + std::to_string(subtrees_pruned);
  s += " pruned_nodes=" + std::to_string(nodes_pruned);
  s += " cans=" + std::to_string(cans_entries);
  s += " answers=" + std::to_string(answers);
  s += " pred_instances=" + std::to_string(pred_instances);
  s += " obligations=" + std::to_string(obligations);
  s += " max_active_pairs=" + std::to_string(max_active_pairs);
  s += " tree_passes=" + std::to_string(tree_passes);
  s += " aux_passes=" + std::to_string(aux_passes);
  if (buffered_bytes > 0) {
    s += " buffered_bytes=" + std::to_string(buffered_bytes);
  }
  if (dispatch_label_hits + dispatch_wildcard_hits > 0) {
    s += " dispatch_hits=" + std::to_string(dispatch_label_hits) + "+" +
         std::to_string(dispatch_wildcard_hits) + "w";
  }
  if (dispatch_scan_steps > 0) {
    s += " dispatch_scans=" + std::to_string(dispatch_scan_steps);
  }
  if (guard_pool_entries > 0) {
    s += " guard_pool=" + std::to_string(guard_pool_entries) + " (" +
         std::to_string(guard_pool_hits) + "h/" +
         std::to_string(guard_pool_misses) + "m)";
  }
  if (run_dedup_probes > 0) {
    s += " dedup_probes=" + std::to_string(run_dedup_probes);
  }
  if (runs_deduped > 0) {
    s += " runs_deduped=" + std::to_string(runs_deduped);
  }
  if (plan_cache_hits + plan_cache_misses > 0) {
    s += " plan_cache=" + std::to_string(plan_cache_hits) + "h/" +
         std::to_string(plan_cache_misses) + "m";
  }
  if (batch_plans > 0) {
    s += " batch_plans=" + std::to_string(batch_plans);
  }
  return s;
}

}  // namespace smoqe
