#include "src/common/counters.h"

namespace smoqe {

std::string EvalStats::ToString() const {
  std::string s;
  s += "visited=" + std::to_string(nodes_visited);
  s += " pruned_subtrees=" + std::to_string(subtrees_pruned);
  s += " pruned_nodes=" + std::to_string(nodes_pruned);
  s += " cans=" + std::to_string(cans_entries);
  s += " answers=" + std::to_string(answers);
  s += " pred_instances=" + std::to_string(pred_instances);
  s += " obligations=" + std::to_string(obligations);
  s += " max_active_pairs=" + std::to_string(max_active_pairs);
  s += " tree_passes=" + std::to_string(tree_passes);
  s += " aux_passes=" + std::to_string(aux_passes);
  if (buffered_bytes > 0) {
    s += " buffered_bytes=" + std::to_string(buffered_bytes);
  }
  return s;
}

}  // namespace smoqe
