#ifndef SMOQE_COMMON_ARENA_H_
#define SMOQE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/guardrail.h"

namespace smoqe {

/// \brief Bump allocator for DOM nodes and interned strings.
///
/// Allocations live until the arena is destroyed; nothing is individually
/// freed. Objects allocated here must be trivially destructible (the arena
/// never runs destructors) — DOM nodes satisfy this by storing text as
/// offsets into the arena-owned character data.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `size` bytes aligned to `align`.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t pos = (pos_ + align - 1) & ~(align - 1);
    if (pos + size > cap_) {
      Grow(size + align);
      pos = (pos_ + align - 1) & ~(align - 1);
    }
    void* p = cur_ + pos;
    pos_ = pos + size;
    bytes_used_ += size;
    return p;
  }

  /// Allocates and default-constructs a T.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Copies `data[0..len)` into the arena and returns the stable pointer.
  const char* CopyString(const char* data, size_t len) {
    char* p = static_cast<char*>(Allocate(len + 1, 1));
    for (size_t i = 0; i < len; ++i) p[i] = data[i];
    p[len] = '\0';
    return p;
  }

  /// Total bytes handed out (excludes block slack).
  size_t bytes_used() const { return bytes_used_; }
  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Charges every future block reservation against `budget` (nullptr
  /// detaches). The arena cannot fail an allocation mid-bump, so an
  /// over-budget Grow marks the budget exceeded and the owning request
  /// unwinds at its next guard check — the fail-closed contract lives at
  /// the request layer, not here.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

 private:
  void Grow(size_t min_size) {
    size_t block = next_block_;
    if (block < min_size) block = min_size;
    next_block_ = block * 2;
    blocks_.push_back(std::make_unique<char[]>(block));
    cur_ = blocks_.back().get();
    cap_ = block;
    pos_ = 0;
    bytes_reserved_ += block;
    if (budget_ != nullptr) budget_->Charge(block);
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  size_t pos_ = 0;
  size_t cap_ = 0;
  size_t next_block_ = 1 << 12;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  MemoryBudget* budget_ = nullptr;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_ARENA_H_
