#ifndef SMOQE_COMMON_STRINGS_H_
#define SMOQE_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smoqe {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes the five XML special characters (& < > " ') for text/attr output.
std::string XmlEscape(std::string_view s);

/// 64-bit FNV-1a hash. Stable across runs and platforms (used for plan
/// fingerprints that end up in cache keys, so std::hash's
/// implementation-defined values won't do).
uint64_t Fnv1a64(std::string_view s);

/// True for ASCII name-start / name characters of our XML-name subset
/// (letters, digits, '_', '-', '.', ':'; names start with a letter or '_').
bool IsNameStartChar(char c);
bool IsNameChar(char c);
bool IsValidXmlName(std::string_view s);

}  // namespace smoqe

#endif  // SMOQE_COMMON_STRINGS_H_
