#include "src/common/guardrail.h"

namespace smoqe {
namespace fault {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Site* FaultInjector::Find(const std::string& site) const {
  const int n = num_sites_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (sites_[i].name == site) return &sites_[i];
  }
  return nullptr;
}

void FaultInjector::Arm(const std::string& site, uint64_t k) {
  Site* s = Find(site);
  if (s == nullptr) {
    const int n = num_sites_.load(std::memory_order_relaxed);
    if (n >= kMaxSites) return;  // test misconfiguration; fail open
    sites_[n].name = site;
    s = &sites_[n];
    num_sites_.store(n + 1, std::memory_order_release);
  }
  s->hits.store(0, std::memory_order_relaxed);
  s->fire_at.store(k, std::memory_order_relaxed);
}

void FaultInjector::ArmSeeded(const std::string& site, uint64_t seed,
                              uint64_t max_k) {
  // splitmix64 over (site hash ^ seed): cheap, well-mixed, reproducible.
  uint64_t x = std::hash<std::string>{}(site) ^ seed;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  Arm(site, max_k == 0 ? 1 : 1 + x % max_k);
}

void FaultInjector::Reset() {
  const int n = num_sites_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    sites_[i].hits.store(0, std::memory_order_relaxed);
    sites_[i].fire_at.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::At(const std::string& site) {
  Site* s = Find(site);
  if (s == nullptr) return false;
  const uint64_t hit = s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return hit == s->fire_at.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::Hits(const std::string& site) const {
  const Site* s = Find(site);
  return s == nullptr ? 0 : s->hits.load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace smoqe
