#include "src/index/tax.h"

#include <functional>

namespace smoqe::index {

TaxIndex TaxIndex::Build(const xml::Document& doc) {
  TaxIndex idx;
  idx.width_ = doc.names()->size();
  idx.sets_.resize(doc.num_nodes());

  // Post-order accumulation: children ids are larger than parents', so a
  // reverse id sweep visits children first.
  for (int32_t id = doc.num_nodes() - 1; id >= 0; --id) {
    const xml::Node* n = doc.node(id);
    if (!n->is_element()) continue;
    ++idx.elements_;
    DynamicBitset bits(idx.width_);
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      if (!c->is_element()) continue;
      bits.Set(static_cast<size_t>(c->label));
      bits.UnionWith(idx.sets_[c->node_id]);
    }
    idx.sets_[id] = std::move(bits);
  }
  return idx;
}

size_t TaxIndex::memory_bytes() const {
  size_t bytes = sets_.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& b : sets_) bytes += b.num_words() * 8;
  return bytes;
}

std::string TaxIndex::Dump(const xml::Document& doc, int max_nodes) const {
  std::string out;
  int emitted = 0;
  std::function<void(const xml::Node*, int)> walk = [&](const xml::Node* n,
                                                        int depth) {
    if (emitted >= max_nodes) return;
    ++emitted;
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += doc.names()->NameOf(n->label);
    out += " : {";
    bool first = true;
    sets_[n->node_id].ForEachSetBit([&](size_t bit) {
      if (!first) out += ", ";
      first = false;
      out += doc.names()->NameOf(static_cast<xml::NameId>(bit));
    });
    out += "}\n";
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) walk(c, depth + 1);
    }
  };
  walk(doc.root(), 0);
  return out;
}

}  // namespace smoqe::index
