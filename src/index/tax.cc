#include "src/index/tax.h"

#include <functional>

namespace smoqe::index {

TaxIndex TaxIndex::Build(const xml::Document& doc) {
  auto idx = Build(doc, nullptr);
  // Unguarded build cannot fail (the walk only allocates).
  return idx.MoveValue();
}

Result<TaxIndex> TaxIndex::Build(const xml::Document& doc,
                                 const Guardrail* guard) {
  TaxIndex idx;
  idx.width_ = doc.names()->size();
  idx.sets_.resize(doc.num_nodes());
  if (guard != nullptr) {
    guard->ChargeBytes(idx.sets_.size() * sizeof(DynamicBitset));
    SMOQE_RETURN_IF_ERROR(guard->Check());
  }
  size_t recomputed = 0;
  GuardTicker ticker(guard);
  SMOQE_RETURN_IF_ERROR(
      idx.BuildSubtree(doc.root(), idx.width_, &recomputed, &ticker));
  idx.elements_ = recomputed;
  return idx;
}

void TaxIndex::RecomputeFromChildren(const xml::Node* n, size_t width) {
  DynamicBitset bits(width);
  for (const xml::Node* c = n->first_child; c != nullptr;
       c = c->next_sibling) {
    if (!c->is_element()) continue;
    bits.Set(static_cast<size_t>(c->label));
    bits.UnionWithZeroExt(sets_[c->node_id]);
  }
  sets_[n->node_id] = std::move(bits);
}

Status TaxIndex::BuildSubtree(const xml::Node* subtree, size_t width,
                              size_t* recomputed, GuardTicker* ticker) {
  // Post-order pointer walk (ids are not pre-order after updates, so the
  // seed's reverse-id sweep would read children before they are final).
  // nullptr marks "children done; fold the node below it".
  std::vector<const xml::Node*> stack = {subtree};
  std::vector<const xml::Node*> open;
  size_t charged = *recomputed;
  while (!stack.empty()) {
    if (ticker != nullptr && ticker->Due()) {
      // Each folded element owns a width-bit set; charge the new ones.
      ticker->guard()->ChargeBytes((*recomputed - charged) * (width / 8));
      charged = *recomputed;
      SMOQE_RETURN_IF_ERROR(ticker->Now());
    }
    const xml::Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr) {
      RecomputeFromChildren(open.back(), width);
      ++*recomputed;
      open.pop_back();
      continue;
    }
    if (!n->is_element()) continue;
    open.push_back(n);
    stack.push_back(nullptr);
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) stack.push_back(c);
    }
  }
  return Status::OK();
}

size_t TaxIndex::RepairAfterEdit(
    const xml::Document& doc, const xml::Node* parent,
    const std::vector<const xml::Node*>& new_subtrees,
    const std::vector<int32_t>& retired_ids) {
  auto r = RepairAfterEdit(doc, parent, new_subtrees, retired_ids, nullptr);
  // Unguarded repair cannot fail (no guard, and the fault site only
  // fires when a test armed it — tests that do use the guarded variant).
  return r.ok() ? *r : 0;
}

Result<size_t> TaxIndex::RepairAfterEdit(
    const xml::Document& doc, const xml::Node* parent,
    const std::vector<const xml::Node*>& new_subtrees,
    const std::vector<int32_t>& retired_ids, const Guardrail* guard) {
  if (fault::At("tax.repair")) {
    return Status::Internal("injected index-repair fault (tax.repair)");
  }
  GuardTicker ticker(guard);
  const size_t width = doc.names()->size();
  if (sets_.size() < static_cast<size_t>(doc.num_nodes())) {
    sets_.resize(doc.num_nodes());
  }
  for (int32_t id : retired_ids) sets_[id] = DynamicBitset();
  size_t recomputed = 0;
  for (const xml::Node* s : new_subtrees) {
    if (s->is_element()) {
      SMOQE_RETURN_IF_ERROR(BuildSubtree(s, width, &recomputed, &ticker));
    }
  }
  // Ancestor chain, bottom-up to the root. Children's sets are final:
  // untouched children kept theirs, grafted ones were just built, and
  // chains from other edits correct any overlap on their own pass.
  for (const xml::Node* a = parent; a != nullptr; a = a->parent) {
    SMOQE_RETURN_IF_ERROR(ticker.Tick());
    RecomputeFromChildren(a, width);
    ++recomputed;
  }
  elements_ = static_cast<size_t>(doc.num_elements());
  if (width > width_) width_ = width;
  return recomputed;
}

bool TaxIndex::EquivalentTo(const TaxIndex& other) const {
  const size_t n = sets_.size() > other.sets_.size() ? sets_.size()
                                                     : other.sets_.size();
  static const DynamicBitset kEmpty;
  for (size_t i = 0; i < n; ++i) {
    const DynamicBitset& a = i < sets_.size() ? sets_[i] : kEmpty;
    const DynamicBitset& b = i < other.sets_.size() ? other.sets_[i] : kEmpty;
    if (!a.SameBits(b)) return false;
  }
  return true;
}

size_t TaxIndex::memory_bytes() const {
  size_t bytes = sets_.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& b : sets_) bytes += b.num_words() * 8;
  return bytes;
}

std::string TaxIndex::Dump(const xml::Document& doc, int max_nodes) const {
  std::string out;
  int emitted = 0;
  std::function<void(const xml::Node*, int)> walk = [&](const xml::Node* n,
                                                        int depth) {
    if (emitted >= max_nodes) return;
    ++emitted;
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += doc.names()->NameOf(n->label);
    out += " : {";
    bool first = true;
    sets_[n->node_id].ForEachSetBit([&](size_t bit) {
      if (!first) out += ", ";
      first = false;
      out += doc.names()->NameOf(static_cast<xml::NameId>(bit));
    });
    out += "}\n";
    for (const xml::Node* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) walk(c, depth + 1);
    }
  };
  walk(doc.root(), 0);
  return out;
}

}  // namespace smoqe::index
