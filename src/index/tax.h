#ifndef SMOQE_INDEX_TAX_H_
#define SMOQE_INDEX_TAX_H_

#include <cstdint>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/guardrail.h"
#include "src/common/status.h"
#include "src/xml/dom.h"

namespace smoqe::index {

/// \brief TAX — the Type-Aware XML index (paper §3, Indexer).
///
/// TAX classifies the descendants of every element node by element type:
/// for each node it stores the set of element types occurring *strictly
/// below* it. The evaluator consults this set before descending — if no
/// active automaton state can consume any type present in the subtree,
/// the whole subtree is pruned (experiment E6). Unlike interval labeling
/// schemes that only accelerate the ancestor/descendant test of `//`, the
/// type sets prune subtrees for queries with or without `//` (paper's
/// comparison).
///
/// Layout: one DynamicBitset per element, indexed by the node's document
/// id, with bit positions = NameIds of the shared name table at build
/// time. Built in a single post-order pass, O(|T|·W) where W is words per
/// set. The compressed on-disk form is in tax_io.h (experiment E7).
class TaxIndex {
 public:
  /// Builds the index for `doc`. Width is the name-table size at call
  /// time, so types from other documents sharing the table are
  /// representable. Handles updated documents (retired ids, non-pre-order
  /// id assignment) — the build is a pointer walk, not an id sweep.
  static TaxIndex Build(const xml::Document& doc);

  /// Guarded build: ticks `guard` during the post-order walk and charges
  /// the bitset bytes against its budget. A tripped guard abandons the
  /// half-built index and returns the guard's status.
  static Result<TaxIndex> Build(const xml::Document& doc,
                                const Guardrail* guard);

  /// Descendant type set of the element with document id `node_id`
  /// (bits exclude the node's own label). Returns nullptr for text nodes.
  const DynamicBitset* DescendantTypes(int32_t node_id) const {
    const DynamicBitset& b = sets_[node_id];
    return b.size() == 0 ? nullptr : &b;
  }

  /// Incrementally repairs the index after a structural edit whose lowest
  /// changed element is `parent` (docs/DESIGN.md §6.4): builds sets for
  /// nodes the edit grafted in (ids beyond the previous id range, or
  /// listed in `new_subtrees`), clears sets of retired ids, then
  /// recomputes the descendant-type set of `parent` and of every ancestor
  /// up to the root from their children's (now final) sets. Sets created
  /// here use the *current* name-table width; untouched sets keep their
  /// build-time width (the evaluator's prune test and DescendantTypes are
  /// width-tolerant, and EquivalentTo compares bits, not widths).
  ///
  /// Call once per dirty parent of an edit script, after the script's
  /// mutations; any call order is correct because every chain runs to the
  /// root bottom-up. Returns the number of sets recomputed.
  size_t RepairAfterEdit(const xml::Document& doc, const xml::Node* parent,
                         const std::vector<const xml::Node*>& new_subtrees,
                         const std::vector<int32_t>& retired_ids);

  /// Guarded repair (the update path): same algorithm, plus guard ticks,
  /// budget charging, and the "tax.repair" fault site. On error the
  /// index is in an unspecified state — callers repair a throwaway copy
  /// and publish only on success (smoqe.cc UpdateImpl does exactly that).
  Result<size_t> RepairAfterEdit(const xml::Document& doc,
                                 const xml::Node* parent,
                                 const std::vector<const xml::Node*>& new_subtrees,
                                 const std::vector<int32_t>& retired_ids,
                                 const Guardrail* guard);

  /// True iff both indexes assign the same descendant-type bits to the
  /// same ids (width- and capacity-insensitive; retired/text slots count
  /// as empty). The contract of the incremental-vs-rebuild differential
  /// suite (E12).
  bool EquivalentTo(const TaxIndex& other) const;

  /// Number of distinct element types representable (bitset width).
  size_t type_width() const { return width_; }
  /// Number of indexed elements.
  size_t num_elements() const { return elements_; }
  /// In-memory footprint of the raw (uncompressed) index.
  size_t memory_bytes() const;

  /// Structured dump (element path → type list) of the first `max_nodes`
  /// elements — the text analogue of iSMOQE's index view (Fig. 6).
  std::string Dump(const xml::Document& doc, int max_nodes = 50) const;

 private:
  friend class TaxIo;
  TaxIndex() = default;

  /// Recomputes one element's set from its children's sets (which must be
  /// final) at width `width`.
  void RecomputeFromChildren(const xml::Node* n, size_t width);
  /// Builds sets for every element of a freshly grafted subtree
  /// (post-order pointer walk) at width `width`. `ticker` may be null
  /// (unguarded); a tripped guard stops the walk mid-subtree.
  Status BuildSubtree(const xml::Node* subtree, size_t width,
                      size_t* recomputed, GuardTicker* ticker);

  size_t width_ = 0;
  size_t elements_ = 0;
  // Indexed by document node id; text nodes and retired ids hold empty
  // (width 0) sets.
  std::vector<DynamicBitset> sets_;
};

}  // namespace smoqe::index

#endif  // SMOQE_INDEX_TAX_H_
