#ifndef SMOQE_INDEX_TAX_H_
#define SMOQE_INDEX_TAX_H_

#include <cstdint>
#include <vector>

#include "src/common/bitset.h"
#include "src/xml/dom.h"

namespace smoqe::index {

/// \brief TAX — the Type-Aware XML index (paper §3, Indexer).
///
/// TAX classifies the descendants of every element node by element type:
/// for each node it stores the set of element types occurring *strictly
/// below* it. The evaluator consults this set before descending — if no
/// active automaton state can consume any type present in the subtree,
/// the whole subtree is pruned (experiment E6). Unlike interval labeling
/// schemes that only accelerate the ancestor/descendant test of `//`, the
/// type sets prune subtrees for queries with or without `//` (paper's
/// comparison).
///
/// Layout: one DynamicBitset per element, indexed by the node's document
/// id, with bit positions = NameIds of the shared name table at build
/// time. Built in a single post-order pass, O(|T|·W) where W is words per
/// set. The compressed on-disk form is in tax_io.h (experiment E7).
class TaxIndex {
 public:
  /// Builds the index for `doc`. Width is the name-table size at call
  /// time, so types from other documents sharing the table are
  /// representable.
  static TaxIndex Build(const xml::Document& doc);

  /// Descendant type set of the element with document id `node_id`
  /// (bits exclude the node's own label). Returns nullptr for text nodes.
  const DynamicBitset* DescendantTypes(int32_t node_id) const {
    const DynamicBitset& b = sets_[node_id];
    return b.size() == 0 ? nullptr : &b;
  }

  /// Number of distinct element types representable (bitset width).
  size_t type_width() const { return width_; }
  /// Number of indexed elements.
  size_t num_elements() const { return elements_; }
  /// In-memory footprint of the raw (uncompressed) index.
  size_t memory_bytes() const;

  /// Structured dump (element path → type list) of the first `max_nodes`
  /// elements — the text analogue of iSMOQE's index view (Fig. 6).
  std::string Dump(const xml::Document& doc, int max_nodes = 50) const;

 private:
  friend class TaxIo;
  TaxIndex() = default;

  size_t width_ = 0;
  size_t elements_ = 0;
  // Indexed by document node id; text nodes hold empty (width 0) sets.
  std::vector<DynamicBitset> sets_;
};

}  // namespace smoqe::index

#endif  // SMOQE_INDEX_TAX_H_
