#ifndef SMOQE_INDEX_TAX_IO_H_
#define SMOQE_INDEX_TAX_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/index/tax.h"

namespace smoqe::index {

/// \brief Compressed persistence for TAX (paper §3: "the SMOQE indexer
/// constructs the TAX index, compresses it before it is stored in disk,
/// and uploads it from disk when needed" — experiment E7).
///
/// Format (all varint-coded):
///   magic "TAX1" | width | num_sets |
///   per set: word_count, then words RLE-coded as (zero_run, literal)
///   pairs — descendant type sets of sibling subtrees are sparse, so
///   zero-run elimination compresses well; identical consecutive sets
///   (common for list-like data) are delta-flagged.
class TaxIo {
 public:
  /// Serializes the index to its compressed byte form.
  static std::string Encode(const TaxIndex& index);

  /// Reconstructs an index from bytes produced by Encode.
  static Result<TaxIndex> Decode(std::string_view bytes);

  /// Convenience file wrappers.
  static Status Save(const TaxIndex& index, const std::string& path);
  static Result<TaxIndex> Load(const std::string& path);
};

}  // namespace smoqe::index

#endif  // SMOQE_INDEX_TAX_IO_H_
