#include "src/index/tax_io.h"

#include <fstream>
#include <sstream>

#include "src/common/varint.h"

namespace smoqe::index {

namespace {
constexpr char kMagic[] = "TAX1";
}  // namespace

std::string TaxIo::Encode(const TaxIndex& index) {
  std::string out(kMagic, 4);
  PutVarint64(&out, index.width_);
  PutVarint64(&out, index.sets_.size());
  PutVarint64(&out, index.elements_);

  // Sets repaired after a name-table growth are wider than sets built
  // before it (tax.h RepairAfterEdit); the on-disk form normalizes every
  // set to the index width by zero-extension — bit positions are NameIds,
  // so padding is lossless, and Decode's fixed words-per-set framing
  // stays valid.
  const size_t words_per_set = (index.width_ + 63) / 64;
  const DynamicBitset* prev = nullptr;
  for (const DynamicBitset& set : index.sets_) {
    if (set.size() == 0) {
      out.push_back(2);  // text node placeholder
      continue;
    }
    if (prev != nullptr && set.SameBits(*prev)) {
      out.push_back(1);  // identical to previous element's set
      prev = &set;
      continue;
    }
    out.push_back(0);
    const std::vector<uint64_t>& words = set.words();
    auto word_at = [&](size_t i) -> uint64_t {
      return i < words.size() ? words[i] : 0;
    };
    size_t i = 0;
    while (i < words_per_set) {
      size_t zeros = 0;
      while (i + zeros < words_per_set && word_at(i + zeros) == 0) ++zeros;
      PutVarint64(&out, zeros);
      i += zeros;
      size_t lits = 0;
      while (i + lits < words_per_set && word_at(i + lits) != 0) ++lits;
      PutVarint64(&out, lits);
      for (size_t k = 0; k < lits; ++k) PutVarint64(&out, words[i + k]);
      i += lits;
    }
    prev = &set;
  }
  return out;
}

Result<TaxIndex> TaxIo::Decode(std::string_view bytes) {
  if (bytes.size() < 4 || bytes.substr(0, 4) != kMagic) {
    return Status::ParseError("not a TAX index (bad magic)");
  }
  std::string_view in = bytes.substr(4);
  SMOQE_ASSIGN_OR_RETURN(uint64_t width, GetVarint64(&in));
  SMOQE_ASSIGN_OR_RETURN(uint64_t num_sets, GetVarint64(&in));
  SMOQE_ASSIGN_OR_RETURN(uint64_t elements, GetVarint64(&in));
  if (num_sets > (1ull << 40)) {
    return Status::ParseError("implausible TAX set count");
  }

  TaxIndex idx;
  idx.width_ = width;
  idx.elements_ = elements;
  idx.sets_.resize(num_sets);
  const size_t words_per_set = (width + 63) / 64;

  int64_t prev = -1;
  for (uint64_t s = 0; s < num_sets; ++s) {
    if (in.empty()) return Status::ParseError("truncated TAX index");
    uint8_t flag = static_cast<uint8_t>(in[0]);
    in.remove_prefix(1);
    if (flag == 2) continue;  // text node: empty set
    if (flag == 1) {
      if (prev < 0) return Status::ParseError("TAX copy flag with no prior set");
      idx.sets_[s] = idx.sets_[prev];
      prev = static_cast<int64_t>(s);
      continue;
    }
    if (flag != 0) return Status::ParseError("bad TAX set flag");
    DynamicBitset set(width);
    std::vector<uint64_t>& words = set.mutable_words();
    size_t i = 0;
    while (i < words_per_set) {
      SMOQE_ASSIGN_OR_RETURN(uint64_t zeros, GetVarint64(&in));
      if (zeros > words_per_set - i) {
        return Status::ParseError("TAX zero run overflows set");
      }
      i += zeros;
      SMOQE_ASSIGN_OR_RETURN(uint64_t lits, GetVarint64(&in));
      if (lits > words_per_set - i) {
        return Status::ParseError("TAX literal run overflows set");
      }
      for (uint64_t k = 0; k < lits; ++k) {
        SMOQE_ASSIGN_OR_RETURN(words[i + k], GetVarint64(&in));
      }
      i += lits;
    }
    idx.sets_[s] = std::move(set);
    prev = static_cast<int64_t>(s);
  }
  if (!in.empty()) {
    return Status::ParseError("trailing bytes after TAX index");
  }
  return idx;
}

Status TaxIo::Save(const TaxIndex& index, const std::string& path) {
  std::string bytes = Encode(index);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

Result<TaxIndex> TaxIo::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  return Decode(bytes);
}

}  // namespace smoqe::index
