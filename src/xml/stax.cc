#include "src/xml/stax.h"

#include <cctype>

#include "src/common/guardrail.h"
#include "src/common/strings.h"

namespace smoqe::xml {

StaxReader::StaxReader(std::string_view input, StaxOptions options)
    : input_(input), options_(options) {}

Status StaxReader::Error(std::string msg) const {
  msg += " at line ";
  msg += std::to_string(line_);
  msg += ", column ";
  msg += std::to_string(col_);
  return Status::ParseError(std::move(msg));
}

void StaxReader::Advance() {
  if (pos_ >= input_.size()) return;
  if (input_[pos_] == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  ++pos_;
}

void StaxReader::SkipWhitespace() {
  while (pos_ < input_.size() &&
         std::isspace(static_cast<unsigned char>(input_[pos_]))) {
    Advance();
  }
}

bool StaxReader::Consume(std::string_view lit) {
  if (input_.substr(pos_, lit.size()) != lit) return false;
  for (size_t i = 0; i < lit.size(); ++i) Advance();
  return true;
}

Result<std::string> StaxReader::ReadName() {
  if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
    return Error("expected a name");
  }
  size_t start = pos_;
  while (pos_ < input_.size() && IsNameChar(input_[pos_])) Advance();
  return std::string(input_.substr(start, pos_ - start));
}

Status StaxReader::DecodeEntity(std::string* out) {
  // Caller consumed '&'.
  size_t semi = input_.find(';', pos_);
  if (semi == std::string_view::npos || semi - pos_ > 10) {
    return Error("unterminated entity reference");
  }
  std::string_view ent = input_.substr(pos_, semi - pos_);
  if (ent == "amp") {
    *out += '&';
  } else if (ent == "lt") {
    *out += '<';
  } else if (ent == "gt") {
    *out += '>';
  } else if (ent == "quot") {
    *out += '"';
  } else if (ent == "apos") {
    *out += '\'';
  } else if (!ent.empty() && ent[0] == '#') {
    int base = 10;
    std::string_view digits = ent.substr(1);
    if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
      base = 16;
      digits = digits.substr(1);
    }
    if (digits.empty()) return Error("empty character reference");
    uint32_t code = 0;
    for (char c : digits) {
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return Error("malformed character reference");
      }
      code = code * static_cast<uint32_t>(base) + static_cast<uint32_t>(d);
      if (code > 0x10FFFF) return Error("character reference out of range");
    }
    // XML 1.0 Char production: NUL, C0 controls (other than tab/LF/CR)
    // and surrogate halves are not XML characters. Rejecting them here
    // also protects downstream consumers that treat text as
    // NUL-terminated C strings.
    if (code == 0 ||
        (code < 0x20 && code != 0x9 && code != 0xA && code != 0xD) ||
        (code >= 0xD800 && code <= 0xDFFF)) {
      return Error("character reference to an invalid XML character");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  } else {
    return Error("unknown entity '&" + std::string(ent) + ";'");
  }
  while (pos_ <= semi) Advance();
  return Status::OK();
}

Status StaxReader::ReadAttrValue(std::string* out) {
  char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return Error("expected quoted attribute value");
  }
  Advance();
  out->clear();
  while (true) {
    if (pos_ >= input_.size()) return Error("unterminated attribute value");
    char c = input_[pos_];
    if (c == quote) {
      Advance();
      return Status::OK();
    }
    if (c == '<') return Error("'<' not allowed in attribute value");
    if (c == '\0') return Error("NUL byte in attribute value");
    if (c == '&') {
      Advance();
      SMOQE_RETURN_IF_ERROR(DecodeEntity(out));
    } else {
      *out += c;
      Advance();
    }
  }
}

Status StaxReader::SkipComment() {
  // Caller consumed "<!--".
  size_t end = input_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  while (pos_ < end + 3) Advance();
  return Status::OK();
}

Status StaxReader::SkipProcessingInstruction() {
  // Caller consumed "<?".
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  while (pos_ < end + 2) Advance();
  return Status::OK();
}

Status StaxReader::ReadDoctype() {
  // Caller consumed "<!DOCTYPE".
  SkipWhitespace();
  SMOQE_ASSIGN_OR_RETURN(doctype_name_, ReadName());
  // Scan to the closing '>', capturing an internal subset if present and
  // skipping SYSTEM/PUBLIC external identifiers.
  while (true) {
    if (pos_ >= input_.size()) return Error("unterminated DOCTYPE");
    char c = Peek();
    if (c == '[') {
      Advance();
      size_t start = pos_;
      int depth = 1;
      while (pos_ < input_.size() && depth > 0) {
        if (input_[pos_] == '[') ++depth;
        if (input_[pos_] == ']') --depth;
        if (depth > 0) Advance();
      }
      if (depth != 0) return Error("unterminated DOCTYPE internal subset");
      doctype_ = std::string(input_.substr(start, pos_ - start));
      Advance();  // ']'
    } else if (c == '>') {
      Advance();
      return Status::OK();
    } else if (c == '"' || c == '\'') {
      char quote = c;
      Advance();
      while (pos_ < input_.size() && Peek() != quote) Advance();
      if (pos_ >= input_.size()) return Error("unterminated DOCTYPE literal");
      Advance();
    } else {
      Advance();
    }
  }
}

Result<bool> StaxReader::ReadTextRun() {
  text_.clear();
  bool nonspace = false;
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (c == '<') {
      if (input_.substr(pos_, 9) == "<![CDATA[") {
        for (int i = 0; i < 9; ++i) Advance();
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        for (size_t i = pos_; i < end; ++i) {
          if (!std::isspace(static_cast<unsigned char>(input_[i]))) {
            nonspace = true;
          }
        }
        text_.append(input_.substr(pos_, end - pos_));
        while (pos_ < end + 3) Advance();
        continue;
      }
      if (input_.substr(pos_, 4) == "<!--") {
        for (int i = 0; i < 4; ++i) Advance();
        SMOQE_RETURN_IF_ERROR(SkipComment());
        continue;
      }
      break;  // a tag: end of text run
    }
    if (c == '&') {
      Advance();
      SMOQE_RETURN_IF_ERROR(DecodeEntity(&text_));
      nonspace = true;  // decoded entities count as content even if space
    } else if (c == '\0') {
      // Not an XML character, and it would silently truncate the text
      // once stored as a C string in the document arena.
      return Error("NUL byte in character data");
    } else {
      if (!std::isspace(static_cast<unsigned char>(c))) nonspace = true;
      text_ += c;
      Advance();
    }
  }
  if (!nonspace && options_.skip_whitespace_text) return false;
  return !text_.empty();
}

Result<StaxEvent> StaxReader::Next() {
  if (fault::At("stax.read")) {
    return Status::IOError("injected tokenizer fault (stax.read)");
  }
  if (!started_) {
    started_ = true;
    return StaxEvent::kStartDocument;
  }
  if (done_) return StaxEvent::kEndDocument;
  if (pending_end_) {
    pending_end_ = false;
    name_ = open_.back();
    open_.pop_back();
    if (open_.empty()) {
      // Root closed; only misc content may follow (verified below on the
      // next call).
    }
    return StaxEvent::kEndElement;
  }

  while (true) {
    if (pos_ >= input_.size()) {
      if (!open_.empty()) {
        return Error("unexpected end of input: <" + open_.back() +
                     "> is not closed");
      }
      if (!saw_root_) return Error("document has no root element");
      done_ = true;
      return StaxEvent::kEndDocument;
    }

    char c = Peek();
    if (c != '<') {
      if (open_.empty()) {
        // Text outside the root: only whitespace is allowed.
        size_t start = pos_;
        while (pos_ < input_.size() && Peek() != '<') {
          if (!std::isspace(static_cast<unsigned char>(Peek()))) {
            return Error("content outside the root element");
          }
          Advance();
        }
        (void)start;
        continue;
      }
      SMOQE_ASSIGN_OR_RETURN(bool has_text, ReadTextRun());
      if (has_text) return StaxEvent::kCharacters;
      continue;
    }

    // '<' — dispatch on what follows.
    if (Consume("<?xml")) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated XML declaration");
      while (pos_ < end + 2) Advance();
      continue;
    }
    if (Consume("<?")) {
      SMOQE_RETURN_IF_ERROR(SkipProcessingInstruction());
      continue;
    }
    if (Consume("<!--")) {
      SMOQE_RETURN_IF_ERROR(SkipComment());
      continue;
    }
    if (input_.substr(pos_, 9) == "<![CDATA[") {
      if (open_.empty()) return Error("CDATA outside the root element");
      SMOQE_ASSIGN_OR_RETURN(bool has_text, ReadTextRun());
      if (has_text) return StaxEvent::kCharacters;
      continue;
    }
    if (Consume("<!DOCTYPE")) {
      if (saw_root_) return Error("DOCTYPE after the root element");
      SMOQE_RETURN_IF_ERROR(ReadDoctype());
      continue;
    }
    if (Consume("</")) {
      SMOQE_ASSIGN_OR_RETURN(std::string name, ReadName());
      SkipWhitespace();
      if (!Consume(">")) return Error("malformed end tag");
      if (open_.empty()) return Error("unmatched end tag </" + name + ">");
      if (open_.back() != name) {
        return Error("mismatched end tag: expected </" + open_.back() +
                     ">, found </" + name + ">");
      }
      name_ = std::move(name);
      open_.pop_back();
      return StaxEvent::kEndElement;
    }
    // Start tag.
    Advance();  // '<'
    if (open_.empty() && saw_root_) {
      return Error("multiple root elements");
    }
    SMOQE_ASSIGN_OR_RETURN(name_, ReadName());
    attrs_.clear();
    while (true) {
      SkipWhitespace();
      char d = Peek();
      if (d == '>') {
        Advance();
        open_.push_back(name_);
        saw_root_ = true;
        return StaxEvent::kStartElement;
      }
      if (d == '/') {
        Advance();
        if (!Consume(">")) return Error("malformed self-closing tag");
        open_.push_back(name_);
        saw_root_ = true;
        pending_end_ = true;
        return StaxEvent::kStartElement;
      }
      if (d == '\0') return Error("unterminated start tag");
      StaxAttr attr;
      SMOQE_ASSIGN_OR_RETURN(attr.name, ReadName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' in attribute");
      SkipWhitespace();
      SMOQE_RETURN_IF_ERROR(ReadAttrValue(&attr.value));
      for (const StaxAttr& existing : attrs_) {
        if (existing.name == attr.name) {
          return Error("duplicate attribute '" + attr.name + "'");
        }
      }
      attrs_.push_back(std::move(attr));
    }
  }
}

}  // namespace smoqe::xml
