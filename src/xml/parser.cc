#include "src/xml/parser.h"

#include <fstream>
#include <sstream>

namespace smoqe::xml {

Result<ParsedDocument> ParseXml(std::string_view input, ParseOptions options) {
  StaxOptions stax_options;
  stax_options.skip_whitespace_text = options.skip_whitespace_text;
  StaxReader reader(input, stax_options);
  DocumentBuilder builder(options.names);

  while (true) {
    SMOQE_ASSIGN_OR_RETURN(StaxEvent ev, reader.Next());
    switch (ev) {
      case StaxEvent::kStartDocument:
        break;
      case StaxEvent::kStartElement:
        builder.StartElement(reader.name());
        for (const StaxAttr& a : reader.attrs()) {
          builder.AddAttribute(a.name, a.value);
        }
        break;
      case StaxEvent::kCharacters:
        builder.AddText(reader.text());
        break;
      case StaxEvent::kEndElement:
        SMOQE_RETURN_IF_ERROR(builder.EndElement());
        break;
      case StaxEvent::kEndDocument: {
        SMOQE_ASSIGN_OR_RETURN(Document doc, builder.Finish());
        ParsedDocument out{std::move(doc), reader.doctype_name(),
                           reader.doctype_internal_subset()};
        return out;
      }
    }
  }
}

Result<Document> ParseDocument(std::string_view input, ParseOptions options) {
  SMOQE_ASSIGN_OR_RETURN(ParsedDocument parsed, ParseXml(input, options));
  return std::move(parsed.document);
}

Result<ParsedDocument> ParseXmlFile(const std::string& path,
                                    ParseOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  return ParseXml(content, options);
}

}  // namespace smoqe::xml
