#include "src/xml/name_table.h"

namespace smoqe::xml {

NameId NameTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const size_t idx = size_.load(std::memory_order_relaxed);
  const int c = ChunkOf(idx);
  if (chunks_[c].load(std::memory_order_relaxed) == nullptr) {
    chunk_owner_[c] = std::make_unique<std::string[]>(ChunkCapacity(c));
    chunks_[c].store(chunk_owner_[c].get(), std::memory_order_release);
  }
  std::string* slot =
      chunks_[c].load(std::memory_order_relaxed) + (idx - ChunkBase(c));
  *slot = std::string(name);
  // The string object never moves (chunks are fixed arrays), so views into
  // it — the index key — stay valid even for SSO-resident names.
  NameId id = static_cast<NameId>(idx);
  index_.emplace(std::string_view(*slot), id);
  size_.store(idx + 1, std::memory_order_release);
  return id;
}

NameId NameTable::Lookup(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kNoName : it->second;
}

}  // namespace smoqe::xml
