#include "src/xml/name_table.h"

namespace smoqe::xml {

NameId NameTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  // Deque-like stability: we store strings in a vector, so a rehash of
  // index_ is fine (keys view into the heap buffers of the strings), but a
  // reallocation of names_ moves the std::string objects. Small-string
  // optimization would invalidate views, so force heap allocation for short
  // names by reserving capacity beyond the SSO threshold.
  std::string owned(name);
  if (owned.capacity() < sizeof(std::string)) owned.reserve(sizeof(std::string));
  names_.push_back(std::move(owned));
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

NameId NameTable::Lookup(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoName : it->second;
}

}  // namespace smoqe::xml
