#ifndef SMOQE_XML_SERIALIZER_H_
#define SMOQE_XML_SERIALIZER_H_

#include <string>

#include "src/xml/dom.h"

namespace smoqe::xml {

/// Serialization options.
struct SerializeOptions {
  /// Pretty-print with indentation and one element per line; when false the
  /// output is a single compact line (round-trips losslessly for documents
  /// parsed with skip_whitespace_text).
  bool pretty = false;
  int indent_width = 2;
};

/// Serializes the subtree rooted at `node` to XML text. `names` must be the
/// table the node's document was built with.
std::string SerializeNode(const Node* node, const NameTable& names,
                          SerializeOptions options = {});

/// Serializes a whole document.
std::string SerializeDocument(const Document& doc,
                              SerializeOptions options = {});

}  // namespace smoqe::xml

#endif  // SMOQE_XML_SERIALIZER_H_
