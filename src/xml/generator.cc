#include "src/xml/generator.h"

#include <algorithm>
#include <limits>

#include "src/common/rng.h"

namespace smoqe::xml {

namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

/// Minimum achievable subtree heights per element type, computed by
/// fixpoint; used to steer recursive choices toward termination.
class HeightTable {
 public:
  explicit HeightTable(const Dtd& dtd) : dtd_(dtd) {
    for (const auto& [name, decl] : dtd.elements()) height_[name] = kInfinity;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, decl] : dtd.elements()) {
        int h = 1 + ContentHeight(decl);
        if (h < height_[name]) {
          height_[name] = h;
          changed = true;
        }
      }
    }
  }

  int Of(const std::string& name) const {
    auto it = height_.find(name);
    return it == height_.end() ? kInfinity : it->second;
  }

  int OfParticle(const Particle& p) const {
    switch (p.kind()) {
      case Particle::Kind::kEpsilon:
        return 0;
      case Particle::Kind::kElement:
        return Of(p.name());
      case Particle::Kind::kStar:
      case Particle::Kind::kOpt:
        return 0;  // can be expanded zero times
      case Particle::Kind::kPlus:
        return OfParticle(*p.children()[0]);
      case Particle::Kind::kSeq: {
        int h = 0;
        for (const auto& c : p.children()) h = std::max(h, OfParticle(*c));
        return h;
      }
      case Particle::Kind::kChoice: {
        int h = kInfinity;
        for (const auto& c : p.children()) h = std::min(h, OfParticle(*c));
        return h;
      }
    }
    return kInfinity;
  }

 private:
  int ContentHeight(const ElementDecl& decl) const {
    switch (decl.content) {
      case ContentKind::kEmpty:
      case ContentKind::kAny:  // can always be left empty of elements
      case ContentKind::kPcdata:
      case ContentKind::kMixed:
        return 0;
      case ContentKind::kChildren:
        return OfParticle(*decl.particle);
    }
    return 0;
  }

  const Dtd& dtd_;
  std::map<std::string, int> height_;
};

class Generator {
 public:
  Generator(const Dtd& dtd, const GeneratorOptions& options)
      : dtd_(dtd),
        options_(options),
        rng_(options.seed),
        heights_(dtd),
        builder_(options.names) {}

  Result<Document> Run() {
    if (dtd_.root_name().empty() || dtd_.Find(dtd_.root_name()) == nullptr) {
      return Status::InvalidArgument("DTD has no (declared) root element");
    }
    if (heights_.Of(dtd_.root_name()) >= kInfinity) {
      return Status::InvalidArgument(
          "DTD root cannot derive any finite document");
    }
    SMOQE_RETURN_IF_ERROR(EmitElement(dtd_.root_name(), 0));
    return builder_.Finish();
  }

 private:
  bool WindingDown() const { return nodes_ >= options_.target_nodes; }

  const std::vector<std::string>* TextPool(const std::string& elem) const {
    auto it = options_.text_values.find(elem);
    if (it != options_.text_values.end() && !it->second.empty()) {
      return &it->second;
    }
    return &options_.default_text;
  }

  Status EmitElement(const std::string& name, int depth) {
    if (depth > options_.max_depth + 64) {
      return Status::ResourceExhausted(
          "generator exceeded hard depth cap expanding '" + name + "'");
    }
    const ElementDecl* decl = dtd_.Find(name);
    if (decl == nullptr) {
      return Status::InvalidArgument("undeclared element '" + name +
                                     "' reached during generation");
    }
    builder_.StartElement(name);
    ++nodes_;
    for (const AttrDecl& ad : decl->attrs) {
      if (ad.default_kind == AttrDecl::Default::kRequired) {
        auto it = options_.attr_values.find(name + "@" + ad.name);
        const std::vector<std::string>& pool =
            (it != options_.attr_values.end() && !it->second.empty())
                ? it->second
                : options_.default_text;
        builder_.AddAttribute(ad.name, pool[rng_.Uniform(pool.size())]);
      } else if (ad.default_kind == AttrDecl::Default::kFixed ||
                 ad.default_kind == AttrDecl::Default::kValue) {
        builder_.AddAttribute(ad.name, ad.default_value);
      }
    }
    switch (decl->content) {
      case ContentKind::kEmpty:
        break;
      case ContentKind::kAny:
        // Treated as empty-able; emit optional text only.
        if (rng_.Chance(0.5)) EmitText(name);
        break;
      case ContentKind::kPcdata:
      case ContentKind::kMixed:
        // Data-centric generation: one text child (mixed types could also
        // interleave elements; we keep them text-only which still conforms).
        EmitText(name);
        break;
      case ContentKind::kChildren:
        SMOQE_RETURN_IF_ERROR(EmitParticle(*decl->particle, depth));
        break;
    }
    return builder_.EndElement();
  }

  void EmitText(const std::string& elem) {
    const std::vector<std::string>& pool = *TextPool(elem);
    builder_.AddText(pool[rng_.Uniform(pool.size())]);
    ++nodes_;
  }

  /// Lazy repetition decision for `*` / `+` bodies, consulted before every
  /// iteration so the node budget reflects children generated so far. While
  /// the tree is far below the size target the generator stays in a growth
  /// phase with high continuation probability; near the target it tapers
  /// with the configured star_p, and past it it stops repeating entirely.
  bool ContinueRepetition(int done) {
    if (WindingDown()) return false;
    if (nodes_ * 2 < options_.target_nodes) {
      return done < (1 << 16) && rng_.Chance(0.9);
    }
    return done < options_.star_cap && rng_.Chance(options_.star_p);
  }

  Status EmitParticle(const Particle& p, int depth) {
    switch (p.kind()) {
      case Particle::Kind::kEpsilon:
        return Status::OK();
      case Particle::Kind::kElement:
        return EmitElement(p.name(), depth + 1);
      case Particle::Kind::kSeq: {
        for (const auto& c : p.children()) {
          SMOQE_RETURN_IF_ERROR(EmitParticle(*c, depth));
        }
        return Status::OK();
      }
      case Particle::Kind::kChoice: {
        // Feasible branches: those that can terminate within budget.
        int remaining = options_.max_depth - depth;
        std::vector<const Particle*> feasible;
        for (const auto& c : p.children()) {
          if (heights_.OfParticle(*c) <= remaining) feasible.push_back(c.get());
        }
        if (feasible.empty() || WindingDown()) {
          // Take the shallowest branch.
          const Particle* best = p.children()[0].get();
          for (const auto& c : p.children()) {
            if (heights_.OfParticle(*c) < heights_.OfParticle(*best)) {
              best = c.get();
            }
          }
          return EmitParticle(*best, depth);
        }
        return EmitParticle(*feasible[rng_.Uniform(feasible.size())], depth);
      }
      case Particle::Kind::kStar: {
        const Particle& body = *p.children()[0];
        if (heights_.OfParticle(body) > options_.max_depth - depth) {
          return Status::OK();  // too deep; empty expansion is always legal
        }
        for (int i = 0; ContinueRepetition(i); ++i) {
          SMOQE_RETURN_IF_ERROR(EmitParticle(body, depth));
        }
        return Status::OK();
      }
      case Particle::Kind::kPlus: {
        const Particle& body = *p.children()[0];
        SMOQE_RETURN_IF_ERROR(EmitParticle(body, depth));  // mandatory first
        if (heights_.OfParticle(body) <= options_.max_depth - depth) {
          for (int i = 0; ContinueRepetition(i); ++i) {
            SMOQE_RETURN_IF_ERROR(EmitParticle(body, depth));
          }
        }
        return Status::OK();
      }
      case Particle::Kind::kOpt: {
        const Particle& body = *p.children()[0];
        if (heights_.OfParticle(body) > options_.max_depth - depth ||
            WindingDown()) {
          return Status::OK();
        }
        if (rng_.Chance(0.5)) {
          return EmitParticle(body, depth);
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }

  const Dtd& dtd_;
  const GeneratorOptions& options_;
  Rng rng_;
  HeightTable heights_;
  DocumentBuilder builder_;
  size_t nodes_ = 0;
};

}  // namespace

Result<Document> GenerateDocument(const Dtd& dtd,
                                  const GeneratorOptions& options) {
  Generator gen(dtd, options);
  return gen.Run();
}

}  // namespace smoqe::xml
