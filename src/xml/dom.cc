#include "src/xml/dom.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace smoqe::xml {

std::string Document::DirectText(const Node* e) {
  std::string out;
  for (const Node* c = e->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) out += c->text;
  }
  return out;
}

Node* Document::ImportSubtree(const Node* src, const Document& src_doc) {
  const bool same_names = src_doc.names_ == names_;
  // (source node, copied parent) pairs; children are pushed in reverse so
  // sibling order is preserved under the copied parent. `tail` remembers
  // each copied parent's last-appended child so linking is O(1).
  std::vector<std::pair<const Node*, Node*>> stack = {{src, nullptr}};
  std::unordered_map<Node*, Node*> tail;
  Node* copy_root = nullptr;
  while (!stack.empty()) {
    auto [s, parent] = stack.back();
    stack.pop_back();
    Node* n = arena_->New<Node>();
    n->kind = s->kind;
    if (s->is_element()) {
      n->label = same_names ? s->label
                            : names_->Intern(src_doc.names_->NameOf(s->label));
      ++num_elements_;
    } else if (s->text != nullptr) {
      n->text = arena_->CopyString(s->text, std::strlen(s->text));
    }
    if (s->num_attrs > 0) {
      Attr* arr = static_cast<Attr*>(
          arena_->Allocate(sizeof(Attr) * s->num_attrs, alignof(Attr)));
      for (uint32_t i = 0; i < s->num_attrs; ++i) {
        arr[i].name = same_names
                          ? s->attrs[i].name
                          : names_->Intern(src_doc.names_->NameOf(s->attrs[i].name));
        arr[i].value =
            arena_->CopyString(s->attrs[i].value, std::strlen(s->attrs[i].value));
      }
      n->attrs = arr;
      n->num_attrs = s->num_attrs;
    }
    n->node_id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(n);
    if (parent == nullptr) {
      copy_root = n;
    } else {
      n->parent = parent;
      auto [it, first_child] = tail.emplace(parent, n);
      if (first_child) {
        parent->first_child = n;
      } else {
        it->second->next_sibling = n;
        it->second = n;
      }
    }
    // Push children reversed: siblings of one parent then pop left to
    // right, and each links to its parent's tail in document order.
    size_t mark = stack.size();
    for (const Node* c = s->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back({c, n});
    }
    std::reverse(stack.begin() + static_cast<ptrdiff_t>(mark), stack.end());
  }
  return copy_root;
}

Document Document::Clone() const {
  Document out;
  out.names_ = names_;
  out.arena_ = std::make_unique<Arena>();
  out.num_elements_ = num_elements_;
  out.epoch_ = epoch_;
  out.nodes_.assign(nodes_.size(), nullptr);
  // Pass 1: allocate every live node's copy so pointer fix-up can go
  // through the id map regardless of tree order.
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id] != nullptr) out.nodes_[id] = out.arena_->New<Node>();
  }
  // Pass 2: copy fields, rewrite links via ids, copy text/attrs into the
  // new arena. Ids, orders and the epoch carry over verbatim — id-keyed
  // side structures (TAX sets, provenance, access maps) built against the
  // original remain valid against the clone.
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node* s = nodes_[id];
    if (s == nullptr) continue;
    Node* n = out.nodes_[id];
    n->kind = s->kind;
    n->label = s->label;
    n->node_id = s->node_id;
    n->order = s->order;
    n->subtree_end = s->subtree_end;
    n->parent = s->parent ? out.nodes_[s->parent->node_id] : nullptr;
    n->first_child =
        s->first_child ? out.nodes_[s->first_child->node_id] : nullptr;
    n->next_sibling =
        s->next_sibling ? out.nodes_[s->next_sibling->node_id] : nullptr;
    if (s->text != nullptr) {
      n->text = out.arena_->CopyString(s->text, std::strlen(s->text));
    }
    if (s->num_attrs > 0) {
      Attr* arr = static_cast<Attr*>(
          out.arena_->Allocate(sizeof(Attr) * s->num_attrs, alignof(Attr)));
      for (uint32_t i = 0; i < s->num_attrs; ++i) {
        arr[i].name = s->attrs[i].name;
        arr[i].value = out.arena_->CopyString(s->attrs[i].value,
                                              std::strlen(s->attrs[i].value));
      }
      n->attrs = arr;
      n->num_attrs = s->num_attrs;
    }
  }
  out.root_ = root_ ? out.nodes_[root_->node_id] : nullptr;
  return out;
}

void Document::AttachChild(Node* parent, Node* child, size_t elem_pos) {
  child->parent = parent;
  child->next_sibling = nullptr;
  // Find the element child at element-position `elem_pos` (insertion goes
  // right before it); past the end means append after every child.
  Node* prev = nullptr;
  Node* cur = parent->first_child;
  size_t elems_seen = 0;
  while (cur != nullptr) {
    if (cur->is_element()) {
      if (elems_seen == elem_pos) break;
      ++elems_seen;
    }
    prev = cur;
    cur = cur->next_sibling;
  }
  child->next_sibling = cur;
  if (prev == nullptr) {
    parent->first_child = child;
  } else {
    prev->next_sibling = child;
  }
}

void Document::Unlink(Node* n) {
  Node* parent = n->parent;
  if (parent == nullptr) return;
  if (parent->first_child == n) {
    parent->first_child = n->next_sibling;
  } else {
    Node* prev = parent->first_child;
    while (prev->next_sibling != n) prev = prev->next_sibling;
    prev->next_sibling = n->next_sibling;
  }
  n->parent = nullptr;
  n->next_sibling = nullptr;
}

void Document::RetireIds(Node* subtree) {
  std::vector<Node*> stack = {subtree};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    nodes_[n->node_id] = nullptr;
    if (n->is_element()) --num_elements_;
    for (Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
  }
}

void Document::RemoveSubtree(Node* target) {
  Unlink(target);
  RetireIds(target);
}

void Document::ReplaceSubtree(Node* old_node, Node* new_node) {
  if (old_node == root_) {
    root_ = new_node;
    new_node->parent = nullptr;
    new_node->next_sibling = nullptr;
    RetireIds(old_node);
    return;
  }
  Node* parent = old_node->parent;
  new_node->parent = parent;
  new_node->next_sibling = old_node->next_sibling;
  if (parent->first_child == old_node) {
    parent->first_child = new_node;
  } else {
    Node* prev = parent->first_child;
    while (prev->next_sibling != old_node) prev = prev->next_sibling;
    prev->next_sibling = new_node;
  }
  old_node->parent = nullptr;
  old_node->next_sibling = nullptr;
  RetireIds(old_node);
}

void Document::RefreshOrder() {
  // Iterative pre-order with explicit exit markers (nullptr), so deep
  // genealogy documents cannot overflow the call stack.
  int32_t counter = 0;
  std::vector<Node*> stack = {root_};
  std::vector<Node*> open;
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n == nullptr) {
      open.back()->subtree_end = counter;
      open.pop_back();
      continue;
    }
    n->order = counter++;
    if (n->first_child == nullptr) {
      n->subtree_end = counter;
      continue;
    }
    open.push_back(n);
    stack.push_back(nullptr);
    size_t mark = stack.size();
    for (Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + static_cast<ptrdiff_t>(mark), stack.end());
  }
  ++epoch_;
}

DocumentBuilder::DocumentBuilder(std::shared_ptr<NameTable> names)
    : names_(names ? std::move(names) : NameTable::Create()),
      arena_(std::make_unique<Arena>()) {}

DocumentBuilder::~DocumentBuilder() = default;

void DocumentBuilder::FlushAttrs() {
  if (pending_attr_owner_ == nullptr) return;
  if (!pending_attrs_.empty()) {
    Attr* arr = static_cast<Attr*>(
        arena_->Allocate(sizeof(Attr) * pending_attrs_.size(), alignof(Attr)));
    for (size_t i = 0; i < pending_attrs_.size(); ++i) arr[i] = pending_attrs_[i];
    pending_attr_owner_->attrs = arr;
    pending_attr_owner_->num_attrs = static_cast<uint32_t>(pending_attrs_.size());
    pending_attrs_.clear();
  }
  pending_attr_owner_ = nullptr;
}

void DocumentBuilder::StartElement(std::string_view name) {
  FlushAttrs();
  Node* n = arena_->New<Node>();
  n->kind = Node::Kind::kElement;
  n->label = names_->Intern(name);
  n->node_id = next_id_++;
  n->order = n->node_id;
  ++num_elements_;
  if (!stack_.empty()) {
    Node* parent = stack_.back();
    n->parent = parent;
    if (last_child_.back() == nullptr) {
      parent->first_child = n;
    } else {
      last_child_.back()->next_sibling = n;
    }
    last_child_.back() = n;
  } else if (root_ == nullptr) {
    root_ = n;
  }
  nodes_.push_back(n);
  stack_.push_back(n);
  last_child_.push_back(nullptr);
  pending_attr_owner_ = n;
}

void DocumentBuilder::AddAttribute(std::string_view name,
                                   std::string_view value) {
  if (pending_attr_owner_ == nullptr) return;  // misuse tolerated; dropped
  Attr a;
  a.name = names_->Intern(name);
  a.value = arena_->CopyString(value.data(), value.size());
  pending_attrs_.push_back(a);
}

void DocumentBuilder::AddText(std::string_view text) {
  if (stack_.empty()) return;  // text outside root is ignored
  FlushAttrs();
  Node* n = arena_->New<Node>();
  n->kind = Node::Kind::kText;
  n->text = arena_->CopyString(text.data(), text.size());
  n->node_id = next_id_++;
  n->order = n->node_id;
  n->subtree_end = n->order + 1;
  Node* parent = stack_.back();
  n->parent = parent;
  if (last_child_.back() == nullptr) {
    parent->first_child = n;
  } else {
    last_child_.back()->next_sibling = n;
  }
  last_child_.back() = n;
  nodes_.push_back(n);
}

Status DocumentBuilder::EndElement() {
  if (stack_.empty()) {
    return Status::FailedPrecondition("EndElement with no open element");
  }
  FlushAttrs();
  Node* n = stack_.back();
  n->subtree_end = next_id_;
  stack_.pop_back();
  last_child_.pop_back();
  return Status::OK();
}

Result<Document> DocumentBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (!stack_.empty()) {
    return Status::FailedPrecondition("Finish with unclosed elements");
  }
  if (root_ == nullptr) {
    return Status::FailedPrecondition("document has no root element");
  }
  finished_ = true;
  Document doc;
  doc.names_ = std::move(names_);
  doc.arena_ = std::move(arena_);
  doc.root_ = root_;
  doc.nodes_ = std::move(nodes_);
  doc.num_elements_ = num_elements_;
  return doc;
}

}  // namespace smoqe::xml
