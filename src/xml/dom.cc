#include "src/xml/dom.h"

namespace smoqe::xml {

std::string Document::DirectText(const Node* e) {
  std::string out;
  for (const Node* c = e->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) out += c->text;
  }
  return out;
}

DocumentBuilder::DocumentBuilder(std::shared_ptr<NameTable> names)
    : names_(names ? std::move(names) : NameTable::Create()),
      arena_(std::make_unique<Arena>()) {}

DocumentBuilder::~DocumentBuilder() = default;

void DocumentBuilder::FlushAttrs() {
  if (pending_attr_owner_ == nullptr) return;
  if (!pending_attrs_.empty()) {
    Attr* arr = static_cast<Attr*>(
        arena_->Allocate(sizeof(Attr) * pending_attrs_.size(), alignof(Attr)));
    for (size_t i = 0; i < pending_attrs_.size(); ++i) arr[i] = pending_attrs_[i];
    pending_attr_owner_->attrs = arr;
    pending_attr_owner_->num_attrs = static_cast<uint32_t>(pending_attrs_.size());
    pending_attrs_.clear();
  }
  pending_attr_owner_ = nullptr;
}

void DocumentBuilder::StartElement(std::string_view name) {
  FlushAttrs();
  Node* n = arena_->New<Node>();
  n->kind = Node::Kind::kElement;
  n->label = names_->Intern(name);
  n->node_id = next_id_++;
  ++num_elements_;
  if (!stack_.empty()) {
    Node* parent = stack_.back();
    n->parent = parent;
    if (last_child_.back() == nullptr) {
      parent->first_child = n;
    } else {
      last_child_.back()->next_sibling = n;
    }
    last_child_.back() = n;
  } else if (root_ == nullptr) {
    root_ = n;
  }
  nodes_.push_back(n);
  stack_.push_back(n);
  last_child_.push_back(nullptr);
  pending_attr_owner_ = n;
}

void DocumentBuilder::AddAttribute(std::string_view name,
                                   std::string_view value) {
  if (pending_attr_owner_ == nullptr) return;  // misuse tolerated; dropped
  Attr a;
  a.name = names_->Intern(name);
  a.value = arena_->CopyString(value.data(), value.size());
  pending_attrs_.push_back(a);
}

void DocumentBuilder::AddText(std::string_view text) {
  if (stack_.empty()) return;  // text outside root is ignored
  FlushAttrs();
  Node* n = arena_->New<Node>();
  n->kind = Node::Kind::kText;
  n->text = arena_->CopyString(text.data(), text.size());
  n->node_id = next_id_++;
  n->subtree_end = n->node_id + 1;
  Node* parent = stack_.back();
  n->parent = parent;
  if (last_child_.back() == nullptr) {
    parent->first_child = n;
  } else {
    last_child_.back()->next_sibling = n;
  }
  last_child_.back() = n;
  nodes_.push_back(n);
}

Status DocumentBuilder::EndElement() {
  if (stack_.empty()) {
    return Status::FailedPrecondition("EndElement with no open element");
  }
  FlushAttrs();
  Node* n = stack_.back();
  n->subtree_end = next_id_;
  stack_.pop_back();
  last_child_.pop_back();
  return Status::OK();
}

Result<Document> DocumentBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (!stack_.empty()) {
    return Status::FailedPrecondition("Finish with unclosed elements");
  }
  if (root_ == nullptr) {
    return Status::FailedPrecondition("document has no root element");
  }
  finished_ = true;
  Document doc;
  doc.names_ = std::move(names_);
  doc.arena_ = std::move(arena_);
  doc.root_ = root_;
  doc.nodes_ = std::move(nodes_);
  doc.num_elements_ = num_elements_;
  return doc;
}

}  // namespace smoqe::xml
