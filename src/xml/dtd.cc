#include "src/xml/dtd.h"

#include <cassert>
#include <functional>

namespace smoqe::xml {

std::unique_ptr<Particle> Particle::Element(std::string name) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kElement));
  p->name_ = std::move(name);
  return p;
}

std::unique_ptr<Particle> Particle::Seq(
    std::vector<std::unique_ptr<Particle>> ps) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kSeq));
  p->children_ = std::move(ps);
  return p;
}

std::unique_ptr<Particle> Particle::Choice(
    std::vector<std::unique_ptr<Particle>> ps) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kChoice));
  p->children_ = std::move(ps);
  return p;
}

std::unique_ptr<Particle> Particle::Star(std::unique_ptr<Particle> c) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kStar));
  p->children_.push_back(std::move(c));
  return p;
}

std::unique_ptr<Particle> Particle::Plus(std::unique_ptr<Particle> c) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kPlus));
  p->children_.push_back(std::move(c));
  return p;
}

std::unique_ptr<Particle> Particle::Opt(std::unique_ptr<Particle> c) {
  auto p = std::unique_ptr<Particle>(new Particle(Kind::kOpt));
  p->children_.push_back(std::move(c));
  return p;
}

std::unique_ptr<Particle> Particle::Epsilon() {
  return std::unique_ptr<Particle>(new Particle(Kind::kEpsilon));
}

std::unique_ptr<Particle> Particle::Clone() const {
  switch (kind_) {
    case Kind::kElement:
      return Element(name_);
    case Kind::kEpsilon:
      return Epsilon();
    default: {
      auto p = std::unique_ptr<Particle>(new Particle(kind_));
      for (const auto& c : children_) p->children_.push_back(c->Clone());
      return p;
    }
  }
}

void Particle::CollectNames(std::set<std::string>* out) const {
  if (kind_ == Kind::kElement) {
    out->insert(name_);
    return;
  }
  for (const auto& c : children_) c->CollectNames(out);
}

std::unique_ptr<Particle> Particle::Substitute(std::unique_ptr<Particle> p,
                                               const std::string& name,
                                               const Particle& repl) {
  if (p->kind_ == Kind::kElement) {
    if (p->name_ == name) return repl.Clone();
    return p;
  }
  for (auto& c : p->children_) {
    c = Substitute(std::move(c), name, repl);
  }
  return p;
}

std::string Particle::ToString() const {
  switch (kind_) {
    case Kind::kElement:
      return name_;
    case Kind::kEpsilon:
      return "()";
    case Kind::kSeq:
    case Kind::kChoice: {
      const char* sep = kind_ == Kind::kSeq ? ", " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kStar:
    case Kind::kPlus:
    case Kind::kOpt: {
      const char suffix = kind_ == Kind::kStar ? '*'
                          : kind_ == Kind::kPlus ? '+'
                                                 : '?';
      std::string inner = children_[0]->ToString();
      // DTD syntax: names take the suffix directly ("visit*"), groups are
      // already parenthesized; anything else needs explicit parentheses.
      if (children_[0]->kind_ == Kind::kElement ||
          children_[0]->kind_ == Kind::kSeq ||
          children_[0]->kind_ == Kind::kChoice) {
        return inner + suffix;
      }
      return "(" + inner + ")" + suffix;
    }
  }
  return "?";
}

namespace {

bool IsNullable(const Particle& p) {
  switch (p.kind()) {
    case Particle::Kind::kEpsilon:
    case Particle::Kind::kStar:
    case Particle::Kind::kOpt:
      return true;
    case Particle::Kind::kElement:
      return false;
    case Particle::Kind::kPlus:
      return IsNullable(*p.children()[0]);
    case Particle::Kind::kSeq: {
      for (const auto& c : p.children()) {
        if (!IsNullable(*c)) return false;
      }
      return true;
    }
    case Particle::Kind::kChoice: {
      for (const auto& c : p.children()) {
        if (IsNullable(*c)) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::unique_ptr<Particle> Particle::Simplify(std::unique_ptr<Particle> p) {
  using K = Kind;
  // Simplify children first.
  for (auto& c : p->children_) c = Simplify(std::move(c));

  switch (p->kind_) {
    case K::kElement:
    case K::kEpsilon:
      return p;
    case K::kSeq:
    case K::kChoice: {
      std::vector<std::unique_ptr<Particle>> flat;
      bool had_epsilon_branch = false;
      for (auto& c : p->children_) {
        if (c->kind_ == p->kind_) {
          for (auto& gc : c->children_) flat.push_back(std::move(gc));
        } else if (c->kind_ == K::kEpsilon) {
          had_epsilon_branch = true;
          if (p->kind_ == K::kChoice) continue;  // dropped; recorded
          // In a sequence epsilon is the identity: drop it.
        } else {
          flat.push_back(std::move(c));
        }
      }
      if (flat.empty()) return Epsilon();
      if (flat.size() == 1) {
        auto only = std::move(flat[0]);
        if (p->kind_ == K::kChoice && had_epsilon_branch &&
            !IsNullable(*only)) {
          return Simplify(Opt(std::move(only)));
        }
        return only;
      }
      p->children_ = std::move(flat);
      if (p->kind_ == K::kChoice && had_epsilon_branch) {
        bool some_nullable = false;
        for (const auto& c : p->children_) {
          if (IsNullable(*c)) some_nullable = true;
        }
        if (!some_nullable) return Simplify(Opt(std::move(p)));
      }
      return p;
    }
    case K::kStar: {
      Particle* c = p->children_[0].get();
      if (c->kind_ == K::kEpsilon) return Epsilon();
      if (c->kind_ == K::kStar || c->kind_ == K::kOpt ||
          c->kind_ == K::kPlus) {
        return Simplify(Star(std::move(c->children_[0])));
      }
      return p;
    }
    case K::kPlus: {
      Particle* c = p->children_[0].get();
      if (c->kind_ == K::kEpsilon) return Epsilon();
      if (c->kind_ == K::kStar || c->kind_ == K::kOpt) {
        return Simplify(Star(std::move(c->children_[0])));
      }
      if (c->kind_ == K::kPlus) {
        return Simplify(Plus(std::move(c->children_[0])));
      }
      return p;
    }
    case K::kOpt: {
      Particle* c = p->children_[0].get();
      if (c->kind_ == K::kEpsilon) return Epsilon();
      if (IsNullable(*c)) return std::move(p->children_[0]);
      return p;
    }
  }
  return p;
}

bool Particle::StructurallyEquals(const Particle& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::kElement) return name_ == other.name_;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->StructurallyEquals(*other.children_[i])) return false;
  }
  return true;
}

Status Dtd::AddElement(ElementDecl decl) {
  auto [it, inserted] = elements_.emplace(decl.name, std::move(decl));
  if (!inserted) {
    return Status::AlreadyExists("element '" + it->first +
                                 "' declared twice");
  }
  return Status::OK();
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = elements_.find(std::string(name));
  return it == elements_.end() ? nullptr : &it->second;
}

ElementDecl* Dtd::FindMutable(std::string_view name) {
  auto it = elements_.find(std::string(name));
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::ChildTypes(std::string_view name) const {
  const ElementDecl* decl = Find(name);
  if (decl == nullptr) return {};
  std::set<std::string> set;
  switch (decl->content) {
    case ContentKind::kEmpty:
    case ContentKind::kPcdata:
      break;
    case ContentKind::kAny:
      for (const auto& [n, d] : elements_) set.insert(n);
      break;
    case ContentKind::kMixed:
      set.insert(decl->mixed_names.begin(), decl->mixed_names.end());
      break;
    case ContentKind::kChildren:
      decl->particle->CollectNames(&set);
      break;
  }
  return {set.begin(), set.end()};
}

bool Dtd::AllowsText(std::string_view name) const {
  const ElementDecl* decl = Find(name);
  if (decl == nullptr) return false;
  return decl->content == ContentKind::kPcdata ||
         decl->content == ContentKind::kMixed ||
         decl->content == ContentKind::kAny;
}

bool Dtd::IsRecursive() const {
  // Colors: 0 unvisited, 1 on stack, 2 done.
  std::map<std::string, int> color;
  bool cyclic = false;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    for (const std::string& c : ChildTypes(n)) {
      if (cyclic) return;
      auto it = color.find(c);
      if (it == color.end() || it->second == 0) {
        dfs(c);
      } else if (it->second == 1) {
        cyclic = true;
      }
    }
    color[n] = 2;
  };
  if (!root_name_.empty() && Find(root_name_) != nullptr) {
    dfs(root_name_);
  } else {
    for (const auto& [n, d] : elements_) {
      if (color[n] == 0) dfs(n);
    }
  }
  return cyclic;
}

std::string Dtd::ToString() const {
  std::string out;
  auto render = [&](const ElementDecl& d) {
    out += "<!ELEMENT " + d.name + " ";
    switch (d.content) {
      case ContentKind::kEmpty:
        out += "EMPTY";
        break;
      case ContentKind::kAny:
        out += "ANY";
        break;
      case ContentKind::kPcdata:
        out += "(#PCDATA)";
        break;
      case ContentKind::kMixed: {
        out += "(#PCDATA";
        for (const auto& n : d.mixed_names) out += " | " + n;
        out += ")*";
        break;
      }
      case ContentKind::kChildren: {
        std::string s = d.particle->ToString();
        if (s.empty() || s[0] != '(') s = "(" + s + ")";
        out += s;
        break;
      }
    }
    out += ">\n";
  };
  const ElementDecl* root = Find(root_name_);
  if (root != nullptr) render(*root);
  for (const auto& [n, d] : elements_) {
    if (n == root_name_) continue;
    render(d);
  }
  return out;
}

}  // namespace smoqe::xml
