#include "src/xml/dtd_validator.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace smoqe::xml {

namespace {

/// Small ε-NFA over element-type names compiled from one content particle
/// (Thompson construction), simulated with ε-closure per child.
class ContentAutomaton {
 public:
  explicit ContentAutomaton(const Particle& p) {
    start_ = NewState();
    int end = Build(p, start_);
    accept_ = end;
  }

  /// True iff the sequence of child element names matches the model.
  bool Matches(const std::vector<const std::string*>& children) const {
    std::set<int> cur;
    AddClosure(start_, &cur);
    for (const std::string* name : children) {
      std::set<int> next;
      for (int s : cur) {
        auto range = labeled_.equal_range(s);
        for (auto it = range.first; it != range.second; ++it) {
          if (it->second.first == *name) AddClosure(it->second.second, &next);
        }
      }
      if (next.empty()) return false;
      cur = std::move(next);
    }
    return cur.count(accept_) > 0;
  }

 private:
  int NewState() {
    eps_.emplace_back();
    return static_cast<int>(eps_.size()) - 1;
  }

  // Builds the fragment for `p` starting at `in`; returns its exit state.
  int Build(const Particle& p, int in) {
    switch (p.kind()) {
      case Particle::Kind::kEpsilon:
        return in;
      case Particle::Kind::kElement: {
        int out = NewState();
        labeled_.emplace(in, std::make_pair(p.name(), out));
        return out;
      }
      case Particle::Kind::kSeq: {
        int cur = in;
        for (const auto& c : p.children()) cur = Build(*c, cur);
        return cur;
      }
      case Particle::Kind::kChoice: {
        int out = NewState();
        for (const auto& c : p.children()) {
          int branch_in = NewState();
          eps_[in].push_back(branch_in);
          int branch_out = Build(*c, branch_in);
          eps_[branch_out].push_back(out);
        }
        return out;
      }
      case Particle::Kind::kStar: {
        int body_in = NewState();
        int out = NewState();
        eps_[in].push_back(body_in);
        eps_[in].push_back(out);
        int body_out = Build(*p.children()[0], body_in);
        eps_[body_out].push_back(body_in);
        eps_[body_out].push_back(out);
        return out;
      }
      case Particle::Kind::kPlus: {
        int body_in = NewState();
        eps_[in].push_back(body_in);
        int body_out = Build(*p.children()[0], body_in);
        int out = NewState();
        eps_[body_out].push_back(body_in);
        eps_[body_out].push_back(out);
        return out;
      }
      case Particle::Kind::kOpt: {
        int out = NewState();
        eps_[in].push_back(out);
        int body_out = Build(*p.children()[0], in);
        eps_[body_out].push_back(out);
        return out;
      }
    }
    return in;
  }

  void AddClosure(int s, std::set<int>* out) const {
    if (!out->insert(s).second) return;
    for (int t : eps_[s]) AddClosure(t, out);
  }

  int start_ = 0;
  int accept_ = 0;
  std::vector<std::vector<int>> eps_;
  std::multimap<int, std::pair<std::string, int>> labeled_;
};

std::string NodeRef(const NameTable& names, const Node* n) {
  return "element '" + names.NameOf(n->label) + "' (node " +
         std::to_string(n->node_id) + ")";
}

/// Content check of one element shared by tree validation (real child
/// list) and update simulation (hypothetical child list). `where` names
/// the element in error messages; `automata` caches compiled content
/// models per element type across calls.
Status CheckContent(const ElementDecl& decl, const std::string& name,
                    const std::vector<const std::string*>& child_names,
                    bool has_text, const std::string& where,
                    std::map<std::string, ContentAutomaton>* automata) {
  switch (decl.content) {
    case ContentKind::kEmpty:
      if (has_text || !child_names.empty()) {
        return Status::InvalidArgument(where + " must be EMPTY");
      }
      break;
    case ContentKind::kAny:
      break;
    case ContentKind::kPcdata:
      if (!child_names.empty()) {
        return Status::InvalidArgument(
            where + " is (#PCDATA) but has element children");
      }
      break;
    case ContentKind::kMixed: {
      for (const std::string* cn : child_names) {
        bool ok = false;
        for (const std::string& allowed : decl.mixed_names) {
          if (allowed == *cn) {
            ok = true;
            break;
          }
        }
        if (!ok) {
          return Status::InvalidArgument(
              where + ": child '" + *cn + "' not allowed in mixed content");
        }
      }
      break;
    }
    case ContentKind::kChildren: {
      if (has_text) {
        return Status::InvalidArgument(
            where + " has element content but contains text");
      }
      auto it = automata->find(name);
      if (it == automata->end()) {
        it = automata->emplace(name, ContentAutomaton(*decl.particle)).first;
      }
      if (!it->second.Matches(child_names)) {
        return Status::InvalidArgument(
            where + ": children do not match content model " +
            decl.particle->ToString());
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace

struct ContentModelCache::Impl {
  std::map<std::string, ContentAutomaton> automata;
};

ContentModelCache::ContentModelCache() : impl_(std::make_unique<Impl>()) {}
ContentModelCache::~ContentModelCache() = default;

/// Internal bridge: resolves the automata map a validation call should
/// use — the caller's cache when given, a call-local map otherwise.
struct ContentModelCacheAccess {
  static std::map<std::string, ContentAutomaton>* Map(
      ContentModelCache* cache,
      std::map<std::string, ContentAutomaton>* local) {
    return cache != nullptr ? &cache->impl_->automata : local;
  }
};

Status ValidateSubtree(const Node* root, const NameTable& names,
                       const Dtd& dtd, ValidateOptions options,
                       ContentModelCache* cache) {
  std::map<std::string, ContentAutomaton> local;
  std::map<std::string, ContentAutomaton>* automata =
      ContentModelCacheAccess::Map(cache, &local);

  // Iterative DFS over elements.
  std::vector<const Node*> stack = {root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!n->is_element()) continue;
    const std::string& name = names.NameOf(n->label);
    const ElementDecl* decl = dtd.Find(name);
    if (decl == nullptr) {
      if (options.allow_undeclared) continue;
      return Status::InvalidArgument("undeclared " + NodeRef(names, n));
    }

    // Gather child info.
    std::vector<const std::string*> child_names;
    bool has_text = false;
    for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      if (c->is_text()) {
        has_text = true;
      } else {
        child_names.push_back(&names.NameOf(c->label));
        stack.push_back(c);
      }
    }

    SMOQE_RETURN_IF_ERROR(CheckContent(*decl, name, child_names, has_text,
                                       NodeRef(names, n), automata));

    if (options.check_attributes) {
      for (const AttrDecl& ad : decl->attrs) {
        if (ad.default_kind == AttrDecl::Default::kRequired) {
          NameId id = names.Lookup(ad.name);
          if (id == kNoName || n->FindAttr(id) == nullptr) {
            return Status::InvalidArgument(NodeRef(names, n) +
                                           " is missing required attribute '" +
                                           ad.name + "'");
          }
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateDocument(const Document& doc, const Dtd& dtd,
                        ValidateOptions options) {
  const NameTable& names = *doc.names();
  const Node* root = doc.root();
  if (!dtd.root_name().empty() &&
      names.NameOf(root->label) != dtd.root_name()) {
    return Status::InvalidArgument("root element '" +
                                   names.NameOf(root->label) +
                                   "' does not match DTD root '" +
                                   dtd.root_name() + "'");
  }
  return ValidateSubtree(root, names, dtd, options);
}

Status ValidateChildSequence(const Dtd& dtd, const std::string& parent_type,
                             const std::vector<std::string>& child_types,
                             bool has_text, ValidateOptions options,
                             ContentModelCache* cache) {
  const ElementDecl* decl = dtd.Find(parent_type);
  if (decl == nullptr) {
    if (options.allow_undeclared) return Status::OK();
    return Status::InvalidArgument("undeclared element '" + parent_type + "'");
  }
  std::vector<const std::string*> child_names;
  child_names.reserve(child_types.size());
  for (const std::string& c : child_types) child_names.push_back(&c);
  std::map<std::string, ContentAutomaton> local;
  return CheckContent(*decl, parent_type, child_names, has_text,
                      "element '" + parent_type + "'",
                      ContentModelCacheAccess::Map(cache, &local));
}

}  // namespace smoqe::xml
