#ifndef SMOQE_XML_DTD_H_
#define SMOQE_XML_DTD_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smoqe::xml {

/// \brief A content particle: a regular expression over element type names.
///
/// Productions of a DTD (`<!ELEMENT a (b, (c | d)*)>`) are particle trees.
/// Particles are also manipulated by the security-view derivation, which
/// inlines hidden element types into their parents' content models.
class Particle {
 public:
  enum class Kind {
    kElement,  ///< a single element type name
    kSeq,      ///< concatenation: p1, p2, ..., pn
    kChoice,   ///< alternation: p1 | p2 | ... | pn
    kStar,     ///< p*
    kPlus,     ///< p+
    kOpt,      ///< p?
    kEpsilon,  ///< empty content (used internally; prints as "()")
  };

  static std::unique_ptr<Particle> Element(std::string name);
  static std::unique_ptr<Particle> Seq(std::vector<std::unique_ptr<Particle>> ps);
  static std::unique_ptr<Particle> Choice(std::vector<std::unique_ptr<Particle>> ps);
  static std::unique_ptr<Particle> Star(std::unique_ptr<Particle> p);
  static std::unique_ptr<Particle> Plus(std::unique_ptr<Particle> p);
  static std::unique_ptr<Particle> Opt(std::unique_ptr<Particle> p);
  static std::unique_ptr<Particle> Epsilon();

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<Particle>>& children() const {
    return children_;
  }

  std::unique_ptr<Particle> Clone() const;

  /// Adds every element type name occurring in this particle to `out`.
  void CollectNames(std::set<std::string>* out) const;

  /// Replaces every occurrence of element `name` by a clone of `repl`
  /// (used by view-DTD construction when a hidden type is inlined).
  /// Returns the possibly-new particle; consumes *this*.
  static std::unique_ptr<Particle> Substitute(std::unique_ptr<Particle> p,
                                              const std::string& name,
                                              const Particle& repl);

  /// DTD-syntax rendering, e.g. "(b, (c | d)*)". Top-level element-only
  /// particles render with surrounding parentheses as DTD requires.
  std::string ToString() const;

  /// Structural simplification: flattens nested seq/choice, removes
  /// epsilons in sequences, collapses single-child seq/choice, rewrites
  /// (p?)* and (p*)* to p*, and turns choices with an epsilon branch into
  /// optionals. Idempotent.
  static std::unique_ptr<Particle> Simplify(std::unique_ptr<Particle> p);

  bool StructurallyEquals(const Particle& other) const;

 private:
  explicit Particle(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;  // kElement only
  std::vector<std::unique_ptr<Particle>> children_;
};

/// How an element type's content is declared.
enum class ContentKind {
  kEmpty,     ///< EMPTY
  kAny,       ///< ANY
  kPcdata,    ///< (#PCDATA)
  kMixed,     ///< (#PCDATA | a | b)*
  kChildren,  ///< a particle over element types
};

/// One `<!ATTLIST>` attribute declaration (stored, lightly enforced).
struct AttrDecl {
  std::string name;
  std::string type;           ///< CDATA, ID, IDREF, NMTOKEN, or enumeration
  enum class Default { kRequired, kImplied, kFixed, kValue } default_kind =
      Default::kImplied;
  std::string default_value;  ///< for kFixed / kValue
};

/// Declaration of one element type.
struct ElementDecl {
  std::string name;
  ContentKind content = ContentKind::kEmpty;
  std::unique_ptr<Particle> particle;      ///< kChildren only
  std::vector<std::string> mixed_names;    ///< kMixed only
  std::vector<AttrDecl> attrs;

  ElementDecl() = default;
  ElementDecl(ElementDecl&&) = default;
  ElementDecl& operator=(ElementDecl&&) = default;
};

/// \brief A Document Type Definition: a root element type plus productions.
///
/// This is the schema formalism SMOQE views are defined over (the paper's
/// Fig. 3 annotates a hospital DTD). Stored by name in a sorted map so
/// rendering and derivation are deterministic.
class Dtd {
 public:
  Dtd() = default;
  Dtd(Dtd&&) = default;
  Dtd& operator=(Dtd&&) = default;

  const std::string& root_name() const { return root_name_; }
  void set_root_name(std::string name) { root_name_ = std::move(name); }

  /// Adds a declaration; fails on duplicates.
  Status AddElement(ElementDecl decl);

  /// Looks up a declaration; null if undeclared.
  const ElementDecl* Find(std::string_view name) const;
  ElementDecl* FindMutable(std::string_view name);

  const std::map<std::string, ElementDecl>& elements() const {
    return elements_;
  }

  /// Element type names that occur in `name`'s content model (its possible
  /// child types). Empty for EMPTY/PCDATA; all declared types for ANY.
  std::vector<std::string> ChildTypes(std::string_view name) const;

  /// True if text content is permitted under `name`.
  bool AllowsText(std::string_view name) const;

  /// True if the type graph reachable from the root has a cycle (the DTD is
  /// recursive — e.g. the hospital DTD's parent → patient edge).
  bool IsRecursive() const;

  /// Renders the DTD as `<!ELEMENT …>` declarations in name order, root
  /// first.
  std::string ToString() const;

 private:
  std::string root_name_;
  std::map<std::string, ElementDecl> elements_;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DTD_H_
