#ifndef SMOQE_XML_DOM_H_
#define SMOQE_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/common/status.h"
#include "src/xml/name_table.h"

namespace smoqe::xml {

struct Node;

/// Attribute of an element node; `value` points into the document arena.
struct Attr {
  NameId name = kNoName;
  const char* value = nullptr;
};

/// \brief One node of the in-memory document tree (DOM mode).
///
/// Nodes are arena-allocated, trivially destructible, and linked in
/// first-child / next-sibling form. `node_id` is the document-order
/// (pre-order) index over *all* nodes, and `subtree_end` is one past the
/// largest id in the node's subtree, so
/// `u` is an ancestor-or-self of `v`  ⇔  `u->node_id <= v->node_id < u->subtree_end`.
struct Node {
  enum class Kind : uint8_t { kElement, kText };

  Kind kind = Kind::kElement;
  NameId label = kNoName;        ///< element name id; kNoName for text nodes
  const char* text = nullptr;    ///< text content; nullptr for elements
  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* next_sibling = nullptr;
  const Attr* attrs = nullptr;   ///< arena array of `num_attrs` attributes
  uint32_t num_attrs = 0;
  int32_t node_id = 0;
  int32_t subtree_end = 0;

  bool is_element() const { return kind == Kind::kElement; }
  bool is_text() const { return kind == Kind::kText; }

  /// Value of the named attribute, or nullptr if absent (elements only).
  const char* FindAttr(NameId name) const {
    for (uint32_t i = 0; i < num_attrs; ++i) {
      if (attrs[i].name == name) return attrs[i].value;
    }
    return nullptr;
  }

  /// True iff `this` is an ancestor of or equal to `v`.
  bool ContainsOrIs(const Node* v) const {
    return node_id <= v->node_id && v->node_id < subtree_end;
  }
};

/// \brief An immutable parsed XML document (DOM mode).
///
/// Owns the node arena and (shares) the name table. Move-only; node
/// pointers remain stable across moves.
class Document {
 public:
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const Node* root() const { return root_; }
  const std::shared_ptr<NameTable>& names() const { return names_; }
  NameTable* mutable_names() const { return names_.get(); }

  /// Total number of nodes (elements + text), equal to the id range.
  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }
  /// Number of element nodes.
  int32_t num_elements() const { return num_elements_; }

  /// Node with the given document-order id.
  const Node* node(int32_t id) const { return nodes_[id]; }

  /// Approximate heap footprint of the tree (arena bytes).
  size_t memory_bytes() const { return arena_->bytes_reserved(); }

  /// Concatenation of the *direct* text children of `e` (XPath string value
  /// restricted to depth one, which is the semantics SMOQE predicates use).
  static std::string DirectText(const Node* e);

 private:
  friend class DocumentBuilder;
  Document() = default;

  std::shared_ptr<NameTable> names_;
  std::unique_ptr<Arena> arena_;
  Node* root_ = nullptr;
  std::vector<Node*> nodes_;  // by node_id
  int32_t num_elements_ = 0;
};

/// \brief Incremental builder used by the parser, the generator and the view
/// materializer.
///
/// Events must form a single well-nested element tree:
///   StartElement (AddAttribute)* (StartElement…EndElement | AddText)* EndElement
class DocumentBuilder {
 public:
  /// If `names` is null a fresh table is created.
  explicit DocumentBuilder(std::shared_ptr<NameTable> names = nullptr);
  ~DocumentBuilder();

  DocumentBuilder(const DocumentBuilder&) = delete;
  DocumentBuilder& operator=(const DocumentBuilder&) = delete;

  /// Opens a child element of the current element (or the root).
  void StartElement(std::string_view name);

  /// Attaches an attribute to the most recently opened element. Must be
  /// called before any child content of that element is added.
  void AddAttribute(std::string_view name, std::string_view value);

  /// Appends a text node under the current element.
  void AddText(std::string_view text);

  /// Closes the current element.
  Status EndElement();

  /// Current nesting depth (0 = before/after root).
  int depth() const { return static_cast<int>(stack_.size()); }

  /// Validates completeness (exactly one closed root) and yields the tree.
  Result<Document> Finish();

 private:
  void FlushAttrs();

  std::shared_ptr<NameTable> names_;
  std::unique_ptr<Arena> arena_;
  std::vector<Node*> nodes_;
  std::vector<Node*> stack_;     // open elements
  std::vector<Node*> last_child_;  // parallel to stack_: last child appended
  Node* root_ = nullptr;
  Node* pending_attr_owner_ = nullptr;
  std::vector<Attr> pending_attrs_;
  int32_t next_id_ = 0;
  int32_t num_elements_ = 0;
  bool finished_ = false;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DOM_H_
