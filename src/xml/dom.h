#ifndef SMOQE_XML_DOM_H_
#define SMOQE_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/common/status.h"
#include "src/xml/name_table.h"

namespace smoqe::xml {

struct Node;

/// Attribute of an element node; `value` points into the document arena.
struct Attr {
  NameId name = kNoName;
  const char* value = nullptr;
};

/// \brief One node of the in-memory document tree (DOM mode).
///
/// Nodes are arena-allocated, trivially destructible, and linked in
/// first-child / next-sibling form. Two numbering schemes coexist:
///
///  * `node_id` is the node's *stable identity*: assigned once, never
///    renumbered, and usable as an array index for the node's whole
///    lifetime (TAX sets, provenance maps, answer ids). Ids of nodes
///    removed by an update are never reused.
///  * `order` is the node's *document-order rank*: a pre-order index over
///    the live tree, recomputed by Document::RefreshOrder after every
///    structural update. `subtree_end` is one past the largest order in
///    the node's subtree, so
///    `u` is an ancestor-or-self of `v` ⇔ `u->order <= v->order < u->subtree_end`.
///
/// For a freshly built document the two coincide (`order == node_id`).
struct Node {
  enum class Kind : uint8_t { kElement, kText };

  Kind kind = Kind::kElement;
  NameId label = kNoName;        ///< element name id; kNoName for text nodes
  const char* text = nullptr;    ///< text content; nullptr for elements
  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* next_sibling = nullptr;
  const Attr* attrs = nullptr;   ///< arena array of `num_attrs` attributes
  uint32_t num_attrs = 0;
  int32_t node_id = 0;           ///< stable identity (see above)
  int32_t order = 0;             ///< document-order rank (see above)
  int32_t subtree_end = 0;       ///< one past the subtree's largest order

  bool is_element() const { return kind == Kind::kElement; }
  bool is_text() const { return kind == Kind::kText; }

  /// Value of the named attribute, or nullptr if absent (elements only).
  const char* FindAttr(NameId name) const {
    for (uint32_t i = 0; i < num_attrs; ++i) {
      if (attrs[i].name == name) return attrs[i].value;
    }
    return nullptr;
  }

  /// True iff `this` is an ancestor of or equal to `v` (both must be live
  /// nodes of a document whose order ranks are current).
  bool ContainsOrIs(const Node* v) const {
    return order <= v->order && v->order < subtree_end;
  }
};

/// \brief A parsed XML document (DOM mode).
///
/// Owns the node arena and (shares) the name table. Move-only; node
/// pointers remain stable across moves.
///
/// Documents are mutable through the structural-update API below (the
/// secure-update subsystem, docs/DESIGN.md §6). Every successful update
/// bumps `epoch()`; consumers that cache anything derived from the tree
/// (serialized text, TAX indexes, materialized views) compare epochs to
/// detect staleness. Node ids are stable across updates — removed ids are
/// retired, never reused — while `order`/`subtree_end` are recomputed by
/// RefreshOrder.
class Document {
 public:
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const Node* root() const { return root_; }
  const std::shared_ptr<NameTable>& names() const { return names_; }
  NameTable* mutable_names() const { return names_.get(); }

  /// One past the largest node id ever assigned (elements + text). The
  /// valid index range of id-keyed side structures; after updates some
  /// slots in it may be retired (node(id) == nullptr).
  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }
  /// Number of live element nodes.
  int32_t num_elements() const { return num_elements_; }

  /// Node with the given id, or nullptr if the id was retired by an
  /// update (never null on a freshly built document).
  const Node* node(int32_t id) const { return nodes_[id]; }

  /// Approximate heap footprint of the tree (arena bytes).
  size_t memory_bytes() const { return arena_->bytes_reserved(); }

  /// Charges future node/string allocations of this document against
  /// `budget` (nullptr detaches). Used by the update path: the engine
  /// attaches the request budget to the pre-publish clone so fragment
  /// grafts are charged, and detaches before publishing.
  void set_memory_budget(MemoryBudget* budget) { arena_->set_budget(budget); }

  /// Deep copy into a fresh arena, preserving *everything* observable:
  /// node ids (including retired slots), order/subtree_end ranks, the
  /// epoch, attributes and text, and the shared name table. This is the
  /// copy-on-write primitive of the snapshot layer (docs/DESIGN.md §7):
  /// `Smoqe::Update` clones the published snapshot, mutates the clone, and
  /// publishes it, so readers pinned to the old tree never observe a
  /// half-applied edit. O(document).
  Document Clone() const;

  /// Concatenation of the *direct* text children of `e` (XPath string value
  /// restricted to depth one, which is the semantics SMOQE predicates use).
  static std::string DirectText(const Node* e);

  // -------------------------------------------------------------------
  // Structural-update API (src/update/ applies authorized edit scripts
  // through these; they maintain ids/links but NOT order ranks — callers
  // finish a batch of mutations with one RefreshOrder()).
  // -------------------------------------------------------------------

  /// Update epoch: 0 for a freshly built document, +1 per RefreshOrder.
  uint64_t epoch() const { return epoch_; }

  /// Mutable access to a live node (nullptr if retired).
  Node* mutable_node(int32_t id) { return nodes_[id]; }

  /// Deep-copies the subtree rooted at `src` (from `src_doc`, which may be
  /// another document or this one) into this document's arena, interning
  /// names into this document's table and assigning fresh node ids. The
  /// copy is detached (no parent/sibling links); attach it with
  /// AttachChild. Returns the copy's root.
  Node* ImportSubtree(const Node* src, const Document& src_doc);

  /// Links detached subtree `child` under `parent` so that it becomes the
  /// element child at element-position `elem_pos` (0 = before the first
  /// element child; >= number of element children = after the last child
  /// of any kind). Text children keep their positions relative to the
  /// preceding element.
  void AttachChild(Node* parent, Node* child, size_t elem_pos);

  /// Unlinks the subtree rooted at `target` and retires every id in it.
  /// `target` must not be the root.
  void RemoveSubtree(Node* target);

  /// Replaces the subtree rooted at `old_node` with detached subtree
  /// `new_node` (same list position); retires the old subtree's ids.
  /// Replacing the root is allowed.
  void ReplaceSubtree(Node* old_node, Node* new_node);

  /// Recomputes order/subtree_end over the live tree and bumps the epoch.
  /// Call once after a batch of structural mutations.
  void RefreshOrder();

 private:
  friend class DocumentBuilder;
  Document() = default;

  void Unlink(Node* n);
  void RetireIds(Node* subtree);

  std::shared_ptr<NameTable> names_;
  std::unique_ptr<Arena> arena_;
  Node* root_ = nullptr;
  std::vector<Node*> nodes_;  // by node_id; nullptr = retired
  int32_t num_elements_ = 0;
  uint64_t epoch_ = 0;
};

/// \brief Incremental builder used by the parser, the generator and the view
/// materializer.
///
/// Events must form a single well-nested element tree:
///   StartElement (AddAttribute)* (StartElement…EndElement | AddText)* EndElement
class DocumentBuilder {
 public:
  /// If `names` is null a fresh table is created.
  explicit DocumentBuilder(std::shared_ptr<NameTable> names = nullptr);
  ~DocumentBuilder();

  DocumentBuilder(const DocumentBuilder&) = delete;
  DocumentBuilder& operator=(const DocumentBuilder&) = delete;

  /// Opens a child element of the current element (or the root).
  void StartElement(std::string_view name);

  /// Attaches an attribute to the most recently opened element. Must be
  /// called before any child content of that element is added.
  void AddAttribute(std::string_view name, std::string_view value);

  /// Appends a text node under the current element.
  void AddText(std::string_view text);

  /// Closes the current element.
  Status EndElement();

  /// Current nesting depth (0 = before/after root).
  int depth() const { return static_cast<int>(stack_.size()); }

  /// Validates completeness (exactly one closed root) and yields the tree.
  Result<Document> Finish();

 private:
  void FlushAttrs();

  std::shared_ptr<NameTable> names_;
  std::unique_ptr<Arena> arena_;
  std::vector<Node*> nodes_;
  std::vector<Node*> stack_;     // open elements
  std::vector<Node*> last_child_;  // parallel to stack_: last child appended
  Node* root_ = nullptr;
  Node* pending_attr_owner_ = nullptr;
  std::vector<Attr> pending_attrs_;
  int32_t next_id_ = 0;
  int32_t num_elements_ = 0;
  bool finished_ = false;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DOM_H_
