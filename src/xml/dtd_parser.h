#ifndef SMOQE_XML_DTD_PARSER_H_
#define SMOQE_XML_DTD_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/status.h"
#include "src/xml/dtd.h"

namespace smoqe::xml {

/// \brief Parses DTD text — a sequence of `<!ELEMENT …>` / `<!ATTLIST …>`
/// declarations (comments and PIs are skipped; parameter entities are not
/// supported and reported as errors).
///
/// `root_name` fixes the root element type; when empty, the root is inferred
/// as the unique declared type that no other declaration references (fails
/// if that type is not unique — pass the name explicitly then).
Result<Dtd> ParseDtd(std::string_view text, std::string_view root_name = "");

/// Parses a standalone content-model expression, e.g. "(b, (c | d)*)".
Result<std::unique_ptr<Particle>> ParseContentModel(std::string_view text);

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DTD_PARSER_H_
