#ifndef SMOQE_XML_STAX_H_
#define SMOQE_XML_STAX_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smoqe::xml {

/// Pull-parsing event kinds, mirroring the StAX (JSR-173) vocabulary the
/// paper's streaming mode consumes.
enum class StaxEvent {
  kStartDocument,
  kStartElement,
  kEndElement,
  kCharacters,
  kEndDocument,
};

/// Decoded attribute of a kStartElement event.
struct StaxAttr {
  std::string name;
  std::string value;
};

/// Options controlling the scanner.
struct StaxOptions {
  /// Drop text events that consist solely of whitespace (the usual choice
  /// for data-centric XML; pretty-printed inputs parse to the same tree).
  bool skip_whitespace_text = true;
};

/// \brief Streaming XML pull reader (StAX mode).
///
/// One sequential, forward-only scan of the input; no document tree is
/// built. `Next()` advances to the next event; accessors are valid until
/// the following `Next()` call. The DOM parser is a thin layer over this
/// reader, so both modes share one tokenizer.
///
/// Supported syntax: XML declaration, DOCTYPE (captured, see
/// `doctype_internal_subset()`), elements, attributes, text, CDATA,
/// comments, processing instructions, and the five built-in entities plus
/// numeric character references. Namespaces are treated as plain names
/// (prefix kept, no URI resolution) — the SMOQE data model is
/// namespace-free, like the paper's.
class StaxReader {
 public:
  explicit StaxReader(std::string_view input, StaxOptions options = {});

  /// Advances to the next event. After kEndDocument (or an error) further
  /// calls keep returning kEndDocument.
  Result<StaxEvent> Next();

  /// Element name; valid for kStartElement / kEndElement.
  const std::string& name() const { return name_; }
  /// Decoded text; valid for kCharacters.
  const std::string& text() const { return text_; }
  /// Decoded attributes; valid for kStartElement.
  const std::vector<StaxAttr>& attrs() const { return attrs_; }

  /// Raw text between '[' and ']' of the DOCTYPE internal subset, empty if
  /// none was present. Available once the reader has moved past the prolog.
  const std::string& doctype_internal_subset() const { return doctype_; }
  /// Root element name declared by DOCTYPE, empty if none.
  const std::string& doctype_name() const { return doctype_name_; }

  /// 1-based position of the current scan point (for error messages).
  int line() const { return line_; }
  int column() const { return col_; }

  /// Current element nesting depth (after the event: a kStartElement for
  /// the root reports depth 1).
  int depth() const { return static_cast<int>(open_.size()); }

 private:
  Status Error(std::string msg) const;
  void SkipWhitespace();
  bool Consume(std::string_view lit);
  Result<std::string> ReadName();
  Status DecodeEntity(std::string* out);
  Status ReadAttrValue(std::string* out);
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status ReadDoctype();
  Result<bool> ReadTextRun();  // fills text_; false if only skippable ws
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }
  void Advance();

  std::string_view input_;
  StaxOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool started_ = false;
  bool done_ = false;
  bool saw_root_ = false;
  bool pending_end_ = false;  // self-closing tag: emit EndElement next
  std::vector<std::string> open_;
  std::string name_;
  std::string text_;
  std::vector<StaxAttr> attrs_;
  std::string doctype_;
  std::string doctype_name_;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_STAX_H_
