#ifndef SMOQE_XML_NAME_TABLE_H_
#define SMOQE_XML_NAME_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smoqe::xml {

/// Interned identifier for an element/attribute name. Negative values are
/// sentinels (kNoName); valid ids index into NameTable.
using NameId = int32_t;

inline constexpr NameId kNoName = -1;

/// \brief Bidirectional string ↔ id interning table.
///
/// One table is typically shared by every document, DTD, automaton and index
/// inside an engine so that label comparisons are integer compares. Interning
/// a name that is already present returns the existing id, so sharing a table
/// across documents is safe and cheap.
class NameTable {
 public:
  NameTable() = default;

  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name);

  /// Returns the id for `name` or kNoName if it was never interned.
  NameId Lookup(std::string_view name) const;

  /// Returns the name for a valid id.
  const std::string& NameOf(NameId id) const { return names_[id]; }

  /// Number of distinct names interned so far.
  size_t size() const { return names_.size(); }

  /// Convenience: a freshly allocated shared table.
  static std::shared_ptr<NameTable> Create() {
    return std::make_shared<NameTable>();
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string_view, NameId> index_;  // views into names_
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_NAME_TABLE_H_
