#ifndef SMOQE_XML_NAME_TABLE_H_
#define SMOQE_XML_NAME_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace smoqe::xml {

/// Interned identifier for an element/attribute name. Negative values are
/// sentinels (kNoName); valid ids index into NameTable.
using NameId = int32_t;

inline constexpr NameId kNoName = -1;

/// \brief Bidirectional string ↔ id interning table.
///
/// One table is typically shared by every document, DTD, automaton and index
/// inside an engine so that label comparisons are integer compares. Interning
/// a name that is already present returns the existing id, so sharing a table
/// across documents is safe and cheap.
///
/// Thread safety (docs/DESIGN.md §7): the table is append-only. Intern and
/// Lookup serialize on an internal mutex; NameOf is lock-free — strings
/// live in geometrically growing chunks that are allocated once and never
/// moved, so a published id resolves without touching the index. This is
/// what lets parallel QueryBatch workers serialize answers and test
/// attributes (both NameOf-heavy) while a concurrent compile interns new
/// query labels.
class NameTable {
 public:
  NameTable() = default;
  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

  /// Returns the id for `name`, interning it if new. Thread-safe.
  NameId Intern(std::string_view name);

  /// Returns the id for `name` or kNoName if it was never interned.
  /// Thread-safe.
  NameId Lookup(std::string_view name) const;

  /// Returns the name for a valid id. Lock-free; safe to call concurrently
  /// with Intern (an id can only be observed after its string is in place).
  const std::string& NameOf(NameId id) const {
    const size_t idx = static_cast<size_t>(id);
    const int c = ChunkOf(idx);
    return chunks_[c].load(std::memory_order_acquire)[idx - ChunkBase(c)];
  }

  /// Number of distinct names interned so far.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Convenience: a freshly allocated shared table.
  static std::shared_ptr<NameTable> Create() {
    return std::make_shared<NameTable>();
  }

 private:
  /// Chunk c holds kFirstChunk·2^c entries starting at kFirstChunk·(2^c−1);
  /// 32 chunks cover ~2^40 names.
  static constexpr size_t kFirstChunk = 256;
  static constexpr int kMaxChunks = 32;

  static int ChunkOf(size_t idx) {
    return 63 - __builtin_clzll(idx / kFirstChunk + 1);
  }
  static size_t ChunkBase(int c) { return kFirstChunk * ((1ull << c) - 1); }
  static size_t ChunkCapacity(int c) { return kFirstChunk << c; }

  mutable std::mutex mu_;
  /// Guarded by mu_. Keys view into the chunk-resident strings (stable).
  std::unordered_map<std::string_view, NameId> index_;
  /// Each slot is set exactly once (under mu_), then never changes; the
  /// arrays themselves are append-only.
  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  std::unique_ptr<std::string[]> chunk_owner_[kMaxChunks];
  std::atomic<size_t> size_{0};
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_NAME_TABLE_H_
