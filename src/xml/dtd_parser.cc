#include "src/xml/dtd_parser.h"

#include <cctype>
#include <set>

#include "src/common/strings.h"

namespace smoqe::xml {

namespace {

/// Cursor over DTD text with line tracking.
class DtdCursor {
 public:
  explicit DtdCursor(std::string_view text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void Advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      Advance();
    }
  }

  bool Consume(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at DTD line " + std::to_string(line_));
  }

  Result<std::string> ReadName() {
    SkipWs();
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ReadQuoted() {
    SkipWs();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected quoted literal");
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Error("unterminated literal");
    std::string out(text_.substr(start, pos_ - start));
    Advance();
    return out;
  }

  // Parses a content particle (the part after the element name).
  Result<std::unique_ptr<Particle>> ParseCp() {
    SkipWs();
    std::unique_ptr<Particle> base;
    if (Peek() == '(') {
      Advance();
      SMOQE_ASSIGN_OR_RETURN(base, ParseGroupBody());
    } else {
      SMOQE_ASSIGN_OR_RETURN(std::string name, ReadName());
      base = Particle::Element(std::move(name));
    }
    return ApplyOccurrence(std::move(base));
  }

  // Parses "... )" after an opening '(' was consumed: a seq or choice.
  Result<std::unique_ptr<Particle>> ParseGroupBody() {
    std::vector<std::unique_ptr<Particle>> parts;
    SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Particle> first, ParseCp());
    parts.push_back(std::move(first));
    SkipWs();
    char sep = '\0';
    while (Peek() == ',' || Peek() == '|') {
      char c = Peek();
      if (sep == '\0') {
        sep = c;
      } else if (sep != c) {
        return Error("mixed ',' and '|' in one group");
      }
      Advance();
      SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Particle> next, ParseCp());
      parts.push_back(std::move(next));
      SkipWs();
    }
    if (!Consume(")")) return Error("expected ')'");
    if (parts.size() == 1) return std::move(parts[0]);
    if (sep == '|') return Particle::Choice(std::move(parts));
    return Particle::Seq(std::move(parts));
  }

  std::unique_ptr<Particle> ApplyOccurrence(std::unique_ptr<Particle> p) {
    switch (Peek()) {
      case '*':
        Advance();
        return Particle::Star(std::move(p));
      case '+':
        Advance();
        return Particle::Plus(std::move(p));
      case '?':
        Advance();
        return Particle::Opt(std::move(p));
      default:
        return p;
    }
  }

  Status ParseElementDecl(Dtd* dtd) {
    ElementDecl decl;
    SMOQE_ASSIGN_OR_RETURN(decl.name, ReadName());
    SkipWs();
    if (Consume("EMPTY")) {
      decl.content = ContentKind::kEmpty;
    } else if (Consume("ANY")) {
      decl.content = ContentKind::kAny;
    } else if (Peek() == '(') {
      Advance();
      SkipWs();
      if (Consume("#PCDATA")) {
        SkipWs();
        std::vector<std::string> names;
        while (Peek() == '|') {
          Advance();
          SMOQE_ASSIGN_OR_RETURN(std::string n, ReadName());
          names.push_back(std::move(n));
          SkipWs();
        }
        if (!Consume(")")) return Error("expected ')' after #PCDATA group");
        bool starred = Consume("*");
        if (names.empty()) {
          decl.content = ContentKind::kPcdata;
        } else {
          if (!starred) {
            return Error("mixed content must be declared (#PCDATA | ...)*");
          }
          decl.content = ContentKind::kMixed;
          decl.mixed_names = std::move(names);
        }
      } else {
        SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Particle> body,
                               ParseGroupBody());
        body = ApplyOccurrence(std::move(body));
        decl.content = ContentKind::kChildren;
        decl.particle = Particle::Simplify(std::move(body));
      }
    } else {
      return Error("expected content specification");
    }
    SkipWs();
    if (!Consume(">")) return Error("expected '>' closing <!ELEMENT");
    return dtd->AddElement(std::move(decl));
  }

  Status ParseAttlistDecl(Dtd* dtd) {
    SMOQE_ASSIGN_OR_RETURN(std::string elem_name, ReadName());
    std::vector<AttrDecl> decls;
    while (true) {
      SkipWs();
      if (Consume(">")) break;
      if (AtEnd()) return Error("unterminated <!ATTLIST");
      AttrDecl ad;
      SMOQE_ASSIGN_OR_RETURN(ad.name, ReadName());
      SkipWs();
      if (Peek() == '(') {  // enumeration type
        size_t start = pos_;
        int depth = 0;
        while (!AtEnd()) {
          if (Peek() == '(') ++depth;
          if (Peek() == ')') {
            Advance();
            if (--depth == 0) break;
            continue;
          }
          Advance();
        }
        ad.type = std::string(text_.substr(start, pos_ - start));
      } else {
        SMOQE_ASSIGN_OR_RETURN(ad.type, ReadName());
      }
      SkipWs();
      if (Consume("#REQUIRED")) {
        ad.default_kind = AttrDecl::Default::kRequired;
      } else if (Consume("#IMPLIED")) {
        ad.default_kind = AttrDecl::Default::kImplied;
      } else if (Consume("#FIXED")) {
        ad.default_kind = AttrDecl::Default::kFixed;
        SMOQE_ASSIGN_OR_RETURN(ad.default_value, ReadQuoted());
      } else {
        ad.default_kind = AttrDecl::Default::kValue;
        SMOQE_ASSIGN_OR_RETURN(ad.default_value, ReadQuoted());
      }
      decls.push_back(std::move(ad));
    }
    ElementDecl* decl = dtd->FindMutable(elem_name);
    if (decl != nullptr) {
      for (auto& ad : decls) decl->attrs.push_back(std::move(ad));
    }
    // ATTLIST for an undeclared element is tolerated (and dropped), as most
    // XML processors do.
    return Status::OK();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view text, std::string_view root_name) {
  DtdCursor cur(text);
  Dtd dtd;
  while (true) {
    cur.SkipWs();
    if (cur.AtEnd()) break;
    if (cur.Consume("<!--")) {
      while (!cur.AtEnd() && !cur.Consume("-->")) cur.Advance();
      continue;
    }
    if (cur.Consume("<?")) {
      while (!cur.AtEnd() && !cur.Consume("?>")) cur.Advance();
      continue;
    }
    if (cur.Consume("<!ELEMENT")) {
      SMOQE_RETURN_IF_ERROR(cur.ParseElementDecl(&dtd));
      continue;
    }
    if (cur.Consume("<!ATTLIST")) {
      SMOQE_RETURN_IF_ERROR(cur.ParseAttlistDecl(&dtd));
      continue;
    }
    if (cur.Consume("<!ENTITY") || cur.Peek() == '%') {
      return cur.Error("parameter/general entity declarations not supported");
    }
    if (cur.Consume("<!NOTATION")) {
      while (!cur.AtEnd() && !cur.Consume(">")) cur.Advance();
      continue;
    }
    return cur.Error("unexpected content in DTD");
  }

  if (!root_name.empty()) {
    if (dtd.Find(root_name) == nullptr) {
      return Status::InvalidArgument("declared root '" + std::string(root_name) +
                                     "' has no <!ELEMENT> declaration");
    }
    dtd.set_root_name(std::string(root_name));
    return dtd;
  }

  // Infer the root: a declared type never referenced by another declaration.
  // ANY declarations are skipped — they reference every type and would make
  // inference impossible even though they name no type explicitly.
  std::set<std::string> referenced;
  for (const auto& [name, decl] : dtd.elements()) {
    if (decl.content == ContentKind::kAny) continue;
    for (const std::string& c : dtd.ChildTypes(name)) {
      if (c != name) referenced.insert(c);
    }
  }
  std::vector<std::string> candidates;
  for (const auto& [name, decl] : dtd.elements()) {
    if (referenced.find(name) == referenced.end()) candidates.push_back(name);
  }
  if (candidates.size() != 1) {
    return Status::InvalidArgument(
        "cannot infer a unique root element (candidates: " +
        std::to_string(candidates.size()) + "); pass root_name explicitly");
  }
  dtd.set_root_name(candidates[0]);
  return dtd;
}

Result<std::unique_ptr<Particle>> ParseContentModel(std::string_view text) {
  DtdCursor cur(text);
  cur.SkipWs();
  SMOQE_ASSIGN_OR_RETURN(std::unique_ptr<Particle> p, cur.ParseCp());
  cur.SkipWs();
  if (!cur.AtEnd()) return cur.Error("trailing input after content model");
  return Particle::Simplify(std::move(p));
}

}  // namespace smoqe::xml
