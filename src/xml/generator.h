#ifndef SMOQE_XML_GENERATOR_H_
#define SMOQE_XML_GENERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::xml {

/// Options for the synthetic document generator.
///
/// The generator produces documents that *conform to the DTD by
/// construction* (verified in tests with the validator). Repetition counts
/// for `*`/`+` follow a capped geometric distribution; recursive types are
/// steered toward termination with precomputed minimum-height tables.
struct GeneratorOptions {
  uint64_t seed = 42;

  /// Soft size target: once the tree reaches this many nodes the generator
  /// winds down (stars stop repeating, choices take the shallowest branch).
  size_t target_nodes = 1000;

  /// Maximum element nesting depth the generator aims for. Mandatory
  /// content (e.g. `+` on a recursive type) may exceed it slightly; a hard
  /// cap of `max_depth + 64` aborts pathological schemas with an error.
  int max_depth = 24;

  /// Geometric continuation probability for `*` / `+` repetitions.
  double star_p = 0.5;
  /// Upper bound on repetitions drawn for one `*` / `+`.
  int star_cap = 8;

  /// Text vocabulary per element type (weighted by repetition). Types not
  /// listed draw from `default_text`.
  std::map<std::string, std::vector<std::string>> text_values;
  std::vector<std::string> default_text = {"alpha", "beta", "gamma", "delta"};

  /// Value pool for #REQUIRED attributes (keyed "elem@attr"; falls back to
  /// `default_text`).
  std::map<std::string, std::vector<std::string>> attr_values;

  /// Share this name table; a fresh one is created when null.
  std::shared_ptr<NameTable> names;
};

/// Generates a random document conforming to `dtd`.
Result<Document> GenerateDocument(const Dtd& dtd, const GeneratorOptions& options);

}  // namespace smoqe::xml

#endif  // SMOQE_XML_GENERATOR_H_
