#include "src/xml/serializer.h"

#include "src/common/strings.h"

namespace smoqe::xml {

namespace {

bool HasTextChild(const Node* node) {
  for (const Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) return true;
  }
  return false;
}

void SerializeRec(const Node* node, const NameTable& names,
                  const SerializeOptions& options, int depth, bool pretty,
                  std::string* out) {
  if (node->is_text()) {
    *out += XmlEscape(node->text);
    return;
  }
  if (pretty) {
    out->append(static_cast<size_t>(depth * options.indent_width), ' ');
  }
  const std::string& name = names.NameOf(node->label);
  *out += '<';
  *out += name;
  for (uint32_t i = 0; i < node->num_attrs; ++i) {
    *out += ' ';
    *out += names.NameOf(node->attrs[i].name);
    *out += "=\"";
    *out += XmlEscape(node->attrs[i].value);
    *out += '"';
  }
  if (node->first_child == nullptr) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  *out += '>';
  // Elements containing text serialize inline even in pretty mode, so that
  // indentation never alters text content (the pretty form re-parses to the
  // same tree).
  bool pretty_children = pretty && !HasTextChild(node);
  if (pretty_children) *out += '\n';
  for (const Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
    SerializeRec(c, names, options, depth + 1, pretty_children, out);
  }
  if (pretty_children) {
    out->append(static_cast<size_t>(depth * options.indent_width), ' ');
  }
  *out += "</";
  *out += name;
  *out += '>';
  if (pretty) *out += '\n';
}

}  // namespace

std::string SerializeNode(const Node* node, const NameTable& names,
                          SerializeOptions options) {
  std::string out;
  SerializeRec(node, names, options, 0, options.pretty, &out);
  return out;
}

std::string SerializeDocument(const Document& doc, SerializeOptions options) {
  return SerializeNode(doc.root(), *doc.names(), options);
}

}  // namespace smoqe::xml
