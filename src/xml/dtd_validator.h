#ifndef SMOQE_XML_DTD_VALIDATOR_H_
#define SMOQE_XML_DTD_VALIDATOR_H_

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::xml {

/// Options for validation.
struct ValidateOptions {
  /// When true, elements without an `<!ELEMENT>` declaration are accepted
  /// (and their content is unchecked). When false they are errors.
  bool allow_undeclared = false;
  /// Check #REQUIRED attributes are present.
  bool check_attributes = true;
};

/// \brief Validates `doc` against `dtd`: root type, content models
/// (matched with Glushkov automata compiled per element declaration),
/// text placement, and required attributes.
///
/// Returns OK or the first violation with the node's document-order id.
Status ValidateDocument(const Document& doc, const Dtd& dtd,
                        ValidateOptions options = {});

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DTD_VALIDATOR_H_
