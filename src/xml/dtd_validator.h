#ifndef SMOQE_XML_DTD_VALIDATOR_H_
#define SMOQE_XML_DTD_VALIDATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xml/dtd.h"

namespace smoqe::xml {

/// \brief Opaque cache of compiled content-model automata, keyed by
/// element type name. One validation call compiles each declaration it
/// meets at most once regardless of the cache; pass one cache across
/// *many* calls sharing one DTD (the update applier's insert-position
/// scan probes the same parent repeatedly) to compile each model once
/// overall. Never share a cache between different DTDs.
class ContentModelCache {
 public:
  ContentModelCache();
  ~ContentModelCache();
  ContentModelCache(const ContentModelCache&) = delete;
  ContentModelCache& operator=(const ContentModelCache&) = delete;

 private:
  friend struct ContentModelCacheAccess;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Options for validation.
struct ValidateOptions {
  /// When true, elements without an `<!ELEMENT>` declaration are accepted
  /// (and their content is unchecked). When false they are errors.
  bool allow_undeclared = false;
  /// Check #REQUIRED attributes are present.
  bool check_attributes = true;
};

/// \brief Validates `doc` against `dtd`: root type, content models
/// (matched with Glushkov automata compiled per element declaration),
/// text placement, and required attributes.
///
/// Returns OK or the first violation with the node's document-order id.
Status ValidateDocument(const Document& doc, const Dtd& dtd,
                        ValidateOptions options = {});

/// Validates the subtree rooted at `root` without the document-root type
/// check — `root` may be *any* declared element type. This is how the
/// update subsystem checks an insert/replace fragment before grafting it
/// (docs/DESIGN.md §6): the fragment must be internally valid; whether it
/// fits at the graft point is ValidateChildSequence's question.
/// `cache` (optional) shares compiled content models across calls.
Status ValidateSubtree(const Node* root, const NameTable& names,
                       const Dtd& dtd, ValidateOptions options = {},
                       ContentModelCache* cache = nullptr);

/// Checks a *hypothetical* child list of one `parent_type` element against
/// its declaration: `child_types` is the would-be sequence of element
/// child type names, `has_text` whether any text child would remain. Used
/// by the update applier to revalidate an edit before mutating anything.
/// For undeclared parents: error unless `options.allow_undeclared`.
/// `cache` (optional) shares compiled content models across calls.
Status ValidateChildSequence(const Dtd& dtd, const std::string& parent_type,
                             const std::vector<std::string>& child_types,
                             bool has_text, ValidateOptions options = {},
                             ContentModelCache* cache = nullptr);

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DTD_VALIDATOR_H_
