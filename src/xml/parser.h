#ifndef SMOQE_XML_PARSER_H_
#define SMOQE_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xml/stax.h"

namespace smoqe::xml {

/// Options for DOM parsing.
struct ParseOptions {
  /// Share this name table; a fresh one is created when null.
  std::shared_ptr<NameTable> names;
  /// Forwarded to the underlying StaxReader.
  bool skip_whitespace_text = true;
};

/// Result of a successful parse: the tree plus any DOCTYPE internal subset
/// text captured on the way (callers may feed it to the DTD parser).
struct ParsedDocument {
  Document document;
  std::string doctype_name;
  std::string doctype_internal_subset;
};

/// \brief Parses an XML string into a Document (DOM mode).
///
/// This is a thin layer over StaxReader — both evaluation modes share one
/// tokenizer, mirroring the paper's DOM/StAX architecture.
Result<ParsedDocument> ParseXml(std::string_view input, ParseOptions options = {});

/// Convenience wrapper that drops the DOCTYPE info.
Result<Document> ParseDocument(std::string_view input, ParseOptions options = {});

/// Reads a whole file and parses it.
Result<ParsedDocument> ParseXmlFile(const std::string& path,
                                    ParseOptions options = {});

}  // namespace smoqe::xml

#endif  // SMOQE_XML_PARSER_H_
